// Erasure-code and regenerating-code interfaces.
//
// The unit of work is one *stripe*: a block of file_size() = B symbols,
// encoded into n coded elements of alpha symbols each.  Decoding succeeds
// from any k distinct elements.  Regenerating codes additionally support
// repair of element `f` from beta-symbol helper data computed by any d
// surviving elements.
//
// Two properties required by the LDS algorithm (paper, Section II-c) are part
// of this contract and are unit-tested for every implementation:
//
//  1. helper_data() depends only on the helper's own element and the *index*
//     of the element being repaired - not on the identity of the other d-1
//     helpers (an L1 server asks all of L2 for help and uses whichever d
//     responses arrive first).
//  2. Repair is *exact*: the repaired element equals what encode() produces
//     for that index.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace lds::codes {

/// (element index, element payload) pair used by decode() and repair().
using IndexedBytes = std::pair<int, Bytes>;

class ErasureCode {
 public:
  virtual ~ErasureCode() = default;

  virtual std::size_t n() const = 0;
  virtual std::size_t k() const = 0;
  /// Symbols stored per element per stripe.
  virtual std::size_t alpha() const = 0;
  /// Stripe size B in symbols.
  virtual std::size_t file_size() const = 0;

  /// Encode one stripe (exactly file_size() symbols) into all n elements.
  virtual std::vector<Bytes> encode(std::span<const std::uint8_t> stripe)
      const = 0;

  /// Encode only element `index` of one stripe.
  virtual Bytes encode_one(std::span<const std::uint8_t> stripe,
                           int index) const;

  /// Decode one stripe from at least k elements with distinct indices.
  /// Returns nullopt if fewer than k distinct valid elements are given.
  virtual std::optional<Bytes> decode(
      std::span<const IndexedBytes> elements) const = 0;
};

class RegeneratingCode : public ErasureCode {
 public:
  /// Number of helpers contacted for repair.
  virtual std::size_t d() const = 0;
  /// Symbols sent by each helper per stripe.
  virtual std::size_t beta() const = 0;

  /// Helper data computed by element `helper_index` (whose stored payload for
  /// this stripe is `helper_element`, alpha symbols) toward the repair of
  /// element `target_index`.  Returns beta() symbols.
  virtual Bytes helper_data(int helper_index,
                            std::span<const std::uint8_t> helper_element,
                            int target_index) const = 0;

  /// Repair element `target_index` from exactly d() helper responses with
  /// distinct helper indices (none equal to target_index).  Returns nullopt
  /// on malformed input (wrong count, duplicate indices).
  virtual std::optional<Bytes> repair(
      int target_index, std::span<const IndexedBytes> helpers) const = 0;
};

inline Bytes ErasureCode::encode_one(std::span<const std::uint8_t> stripe,
                                     int index) const {
  auto all = encode(stripe);
  return std::move(all.at(static_cast<std::size_t>(index)));
}

}  // namespace lds::codes
