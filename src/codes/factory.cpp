#include "codes/factory.h"

#include "codes/pm_mbr.h"
#include "codes/replication.h"
#include "codes/rs.h"

namespace lds::codes {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::PmMbr: return "pm-mbr";
    case BackendKind::Rs: return "rs";
    case BackendKind::Replication: return "replication";
  }
  return "?";
}

StripedCode make_backend(BackendKind kind, std::size_t n, std::size_t k,
                         std::size_t d) {
  switch (kind) {
    case BackendKind::PmMbr:
      return StripedCode(std::make_shared<PmMbrCode>(n, k, d));
    case BackendKind::Rs:
      return StripedCode(std::make_shared<RsRegenerating>(n, k));
    case BackendKind::Replication:
      return StripedCode(std::make_shared<ReplicationCode>(n));
  }
  LDS_REQUIRE(false, "make_backend: unknown kind");
  return StripedCode(nullptr);  // unreachable
}

}  // namespace lds::codes
