#include "codes/rs.h"

#include <algorithm>

#include "matrix/vandermonde.h"

namespace lds::codes {

RsCode::RsCode(std::size_t n, std::size_t k)
    : n_(n), k_(k), gen_(math::vandermonde(n, k)) {
  LDS_REQUIRE(k >= 1 && k <= n && n <= 255, "RsCode: need 1 <= k <= n <= 255");
}

std::vector<Bytes> RsCode::encode(std::span<const std::uint8_t> stripe) const {
  LDS_REQUIRE(stripe.size() == k_, "RsCode::encode: stripe must be k symbols");
  std::vector<Bytes> out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = Bytes{gf::dot(gen_.row(i), stripe)};
  }
  return out;
}

Bytes RsCode::encode_one(std::span<const std::uint8_t> stripe,
                         int index) const {
  LDS_REQUIRE(stripe.size() == k_, "RsCode::encode_one: stripe size");
  LDS_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < n_,
              "RsCode::encode_one: index out of range");
  return Bytes{gf::dot(gen_.row(static_cast<std::size_t>(index)), stripe)};
}

std::optional<Bytes> RsCode::decode(
    std::span<const IndexedBytes> elements) const {
  // Collect the first k distinct valid indices.
  std::vector<int> idx;
  std::vector<std::uint8_t> rhs;
  for (const auto& [i, payload] : elements) {
    if (i < 0 || static_cast<std::size_t>(i) >= n_) continue;
    if (payload.size() != 1) continue;
    if (std::find(idx.begin(), idx.end(), i) != idx.end()) continue;
    idx.push_back(i);
    rhs.push_back(payload[0]);
    if (idx.size() == k_) break;
  }
  if (idx.size() < k_) return std::nullopt;
  const auto x = cached_inverse(idx).mul_vec(rhs);
  return Bytes(x.begin(), x.end());
}

const math::Matrix& RsCode::cached_inverse(const std::vector<int>& rows) const {
  auto it = inverse_cache_.find(rows);
  if (it != inverse_cache_.end()) return it->second;
  if (inverse_cache_.size() > 64) inverse_cache_.clear();
  auto inv = gen_.select_rows(rows).inverse();
  LDS_CHECK(inv.has_value(), "RsCode: Vandermonde submatrix singular");
  return inverse_cache_.emplace(rows, std::move(*inv)).first->second;
}

Bytes RsRegenerating::helper_data(int helper_index,
                                  std::span<const std::uint8_t> helper_element,
                                  int target_index) const {
  LDS_REQUIRE(helper_index >= 0 &&
                  static_cast<std::size_t>(helper_index) < rs_.n(),
              "RsRegenerating::helper_data: helper index");
  LDS_REQUIRE(target_index >= 0 &&
                  static_cast<std::size_t>(target_index) < rs_.n(),
              "RsRegenerating::helper_data: target index");
  // Repair-by-decoding: the helper contributes its entire element.
  return Bytes(helper_element.begin(), helper_element.end());
}

std::optional<Bytes> RsRegenerating::repair(
    int target_index, std::span<const IndexedBytes> helpers) const {
  if (helpers.size() < rs_.k()) return std::nullopt;
  auto stripe = rs_.decode(helpers);
  if (!stripe) return std::nullopt;
  return rs_.encode_one(*stripe, target_index);
}

}  // namespace lds::codes
