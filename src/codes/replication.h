// Replication presented through the code interfaces: n full copies, k = 1.
//
// Per stripe: B = 1 symbol, alpha = 1, every element is the stripe itself.
// Used by the replication baselines (ABD) and by the Remark-2 storage
// comparison (replicated L2 would cost n2 per object instead of Theta(1)).
#pragma once

#include "codes/erasure_code.h"

namespace lds::codes {

class ReplicationCode final : public RegeneratingCode {
 public:
  explicit ReplicationCode(std::size_t n);

  std::size_t n() const override { return n_; }
  std::size_t k() const override { return 1; }
  std::size_t d() const override { return 1; }
  std::size_t alpha() const override { return 1; }
  std::size_t beta() const override { return 1; }
  std::size_t file_size() const override { return 1; }

  std::vector<Bytes> encode(std::span<const std::uint8_t> stripe)
      const override;
  Bytes encode_one(std::span<const std::uint8_t> stripe,
                   int index) const override;
  std::optional<Bytes> decode(
      std::span<const IndexedBytes> elements) const override;

  Bytes helper_data(int helper_index,
                    std::span<const std::uint8_t> helper_element,
                    int target_index) const override;
  std::optional<Bytes> repair(
      int target_index, std::span<const IndexedBytes> helpers) const override;

 private:
  std::size_t n_;
};

}  // namespace lds::codes
