#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "net/codec.h"
#include "storage/crc32c.h"
#include "storage/fsutil.h"

namespace lds::storage {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kSegmentPrefix = "wal-";
constexpr std::string_view kSegmentSuffix = ".log";
constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

std::string errno_msg(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Parse `wal-<seq>.log`; nullopt for anything else (tmp files, checkpoint).
std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  if (name.size() <= kSegmentPrefix.size() + kSegmentSuffix.size() ||
      name.compare(0, kSegmentPrefix.size(), kSegmentPrefix) != 0 ||
      name.compare(name.size() - kSegmentSuffix.size(), kSegmentSuffix.size(),
                   kSegmentSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(
      kSegmentPrefix.size(),
      name.size() - kSegmentPrefix.size() - kSegmentSuffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

}  // namespace

const char* sync_policy_name(SyncPolicy p) {
  switch (p) {
    case SyncPolicy::Always:
      return "always";
    case SyncPolicy::GroupCommit:
      return "group";
    case SyncPolicy::Never:
      return "never";
  }
  return "?";
}

std::optional<SyncPolicy> parse_sync_policy(std::string_view name) {
  if (name == "always") return SyncPolicy::Always;
  if (name == "group" || name == "group-commit") return SyncPolicy::GroupCommit;
  if (name == "never") return SyncPolicy::Never;
  return std::nullopt;
}

Result<std::unique_ptr<Wal>> Wal::open(std::string dir,
                                       DurabilityPolicy policy) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("wal: create_directories " + dir + ": " +
                               ec.message());
  }
  auto wal = std::unique_ptr<Wal>(new Wal(std::move(dir), policy));
  std::uint64_t max_seq = 0;
  for (const auto& entry : fs::directory_iterator(wal->dir_, ec)) {
    const auto seq = parse_segment_name(entry.path().filename().string());
    if (!seq) continue;
    wal->sealed_.push_back(*seq);
    max_seq = std::max(max_seq, *seq);
  }
  if (ec) {
    return Status::Unavailable("wal: scan " + wal->dir_ + ": " + ec.message());
  }
  std::sort(wal->sealed_.begin(), wal->sealed_.end());
  // A fresh segment per incarnation: a predecessor's torn tail stays where
  // it is and replay's "torn means end-of-segment" invariant holds.
  if (auto st = wal->open_segment(max_seq + 1); !st.ok()) return st;
  return wal;
}

Wal::~Wal() {
  if (fd_ >= 0) {
    if (!poisoned() && unsynced_bytes_ > 0) do_sync();
    ::close(fd_);
  }
}

std::string Wal::segment_path(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + name;
}

Status Wal::open_segment(std::uint64_t seq) {
  const std::string path = segment_path(seq);
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Status::Unavailable(errno_msg("wal: open segment"));
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  seq_ = seq;
  cur_bytes_ = 0;
  unsynced_bytes_ = 0;
  return Status::Ok();
}

Status Wal::poison(Status why) {
  poison_ = std::move(why);
  return poison_;
}

Status Wal::do_sync() {
  if (faults_.fail_fsync_next) {
    faults_.fail_fsync_next = false;
    return poison(Status::Unavailable("wal: injected fsync failure"));
  }
  if (::fdatasync(fd_) != 0) {
    return poison(Status::Unavailable(errno_msg("wal: fdatasync")));
  }
  ++stats_.syncs;
  unsynced_bytes_ = 0;
  return Status::Ok();
}

Status Wal::sync() {
  if (poisoned()) return poison_;
  if (unsynced_bytes_ == 0) return Status::Ok();
  return do_sync();
}

Status Wal::rotate() {
  if (poisoned()) return poison_;
  if (auto st = sync(); !st.ok()) return st;
  sealed_.push_back(seq_);
  ++stats_.rotations;
  return open_segment(seq_ + 1);
}

Status Wal::drop_through(std::uint64_t seq) {
  std::error_code ec;
  auto it = sealed_.begin();
  while (it != sealed_.end() && *it <= seq) {
    fs::remove(segment_path(*it), ec);
    if (ec) {
      return Status::Unavailable("wal: drop segment: " + ec.message());
    }
    it = sealed_.erase(it);
  }
  return Status::Ok();
}

Status Wal::append(const std::uint8_t* payload, std::size_t len) {
  if (poisoned()) return poison_;
  if (cur_bytes_ >= policy_.segment_bytes) {
    if (auto st = rotate(); !st.ok()) return st;
  }
  if (faults_.fail_append_after >= 0 && faults_.fail_append_after-- == 0) {
    return poison(Status::Unavailable("wal: injected append failure"));
  }

  net::codec::Writer w(kFrameHeader + len);
  w.u32(static_cast<std::uint32_t>(len));
  w.u32(crc32c(payload, len));
  w.append(payload, len);
  Bytes frame = std::move(w).take();

  std::size_t to_write = frame.size();
  if (faults_.short_write_next) {
    faults_.short_write_next = false;
    to_write = frame.size() / 2;
    std::size_t off = 0;
    while (off < to_write) {
      const ssize_t n = ::write(fd_, frame.data() + off, to_write - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    return poison(Status::Unavailable("wal: injected short write"));
  }

  std::size_t off = 0;
  while (off < to_write) {
    const ssize_t n = ::write(fd_, frame.data() + off, to_write - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return poison(Status::Unavailable(errno_msg("wal: write")));
    }
    off += static_cast<std::size_t>(n);
  }
  cur_bytes_ += frame.size();
  ++stats_.appends;
  stats_.appended_bytes += frame.size();

  switch (policy_.sync) {
    case SyncPolicy::Always:
      return do_sync();
    case SyncPolicy::GroupCommit:
      unsynced_bytes_ += frame.size();
      if (unsynced_bytes_ >= policy_.group_commit_bytes) return do_sync();
      return Status::Ok();
    case SyncPolicy::Never:
      unsynced_bytes_ += frame.size();
      return Status::Ok();
  }
  return Status::Ok();
}

Status Wal::replay(std::uint64_t floor_seq, const RecordFn& fn) {
  std::vector<std::uint64_t> seqs = sealed_;
  seqs.push_back(seq_);  // current segment: non-empty on double replay
  for (const std::uint64_t seq : seqs) {
    if (seq < floor_seq) continue;
    Bytes data;
    if (auto st = read_file_bytes(segment_path(seq), &data); !st.ok()) {
      return st;
    }
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t remaining = data.size() - off;
      if (remaining < kFrameHeader) {
        stats_.torn_tail_bytes += remaining;  // torn header: crash tail
        break;
      }
      net::codec::Reader r(data.data() + off, kFrameHeader);
      std::uint32_t len = 0;
      std::uint32_t crc = 0;
      r.u32(&len);
      r.u32(&crc);
      if (len == 0) {
        // Zero length = file-system pre-allocation residue, not a record
        // this code ever writes; treat as end-of-segment.
        stats_.torn_tail_bytes += remaining;
        break;
      }
      if (remaining - kFrameHeader < len) {
        stats_.torn_tail_bytes += remaining;  // torn payload: crash tail
        break;
      }
      const std::uint8_t* payload = data.data() + off + kFrameHeader;
      if (crc32c(payload, len) != crc) {
        return Status::InvalidArgument(
            "wal: crc mismatch in " + segment_path(seq) + " at offset " +
            std::to_string(off) + " (corrupt log)");
      }
      fn(payload, len);
      ++stats_.replayed_records;
      stats_.replayed_bytes += kFrameHeader + len;
      off += kFrameHeader + len;
    }
  }
  return Status::Ok();
}

}  // namespace lds::storage
