// storage::Manifest — a tiny immutable key/value file (`MANIFEST`) pinned
// into every data directory, recording the deployment parameters the
// on-disk state depends on (geometry n1/f1/n2/f2, code backend, shard
// count, ...).  A restart whose options disagree with the manifest must
// fail fast with InvalidArgument instead of replaying state into a
// differently-shaped cluster and corrupting it.
//
// On-disk layout (CRC-guarded, published atomically via
// write-temp-then-rename):
//
//   u32 magic 'LDSM' | u8 version | u32 count
//   count x ( u32 klen | key | u32 vlen | value )      (sorted by key)
//   u32 crc32c(everything after magic)
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace lds::storage {

class Manifest {
 public:
  void set(const std::string& key, const std::string& value) {
    entries_[key] = value;
  }
  void set(const std::string& key, std::uint64_t value) {
    entries_[key] = std::to_string(value);
  }
  std::optional<std::string> get(const std::string& key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }
  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// Load `dir`/`file`.  Ok + nullopt when the file does not exist;
  /// InvalidArgument on a corrupt or unversioned file.  The default file
  /// name is the deployment manifest; other subsystems (member views) reuse
  /// the same CRC-guarded machinery under their own name.
  static Result<std::optional<Manifest>> load(const std::string& dir,
                                              const std::string& file =
                                                  "MANIFEST");

  /// Atomically publish this manifest as `dir`/`file`.
  Status store(const std::string& dir,
               const std::string& file = "MANIFEST") const;

  /// First run: write the manifest.  Restart: load and compare; any
  /// missing/extra/differing key is InvalidArgument naming the mismatch.
  /// Creates `dir` if needed.
  Status verify_or_write(const std::string& dir,
                         const std::string& file = "MANIFEST") const;

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace lds::storage
