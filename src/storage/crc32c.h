// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// WAL record, checkpoint and manifest on disk.  Software slicing-by-4
// implementation: fast enough that framing, not checksumming, dominates the
// append path, and fully portable (no SSE4.2 requirement, unlike the
// hardware `crc32` instruction).  Matches the standard reflected CRC32C
// (RFC 3720 §B.4); test vectors in test_storage pin the constants.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace lds::storage {

/// One-shot CRC32C of a buffer.
std::uint32_t crc32c(const std::uint8_t* data, std::size_t len);

inline std::uint32_t crc32c(const Bytes& b) {
  return crc32c(b.data(), b.size());
}

/// Incremental form: feed `crc` from a previous call (seed with 0).
std::uint32_t crc32c_extend(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t len);

}  // namespace lds::storage
