// storage::Wal — a generic append-only write-ahead log of opaque records.
//
// On-disk layout (see README "Durability" for the normative tables): a log
// directory holds numbered segment files `wal-<seq>.log`; each segment is a
// run of frames
//
//   u32 len | u32 crc32c(payload) | payload[len]
//
// built with the same little-endian net::codec::Writer primitives as the
// wire protocol.  Every open() starts a FRESH segment (seq = max existing
// + 1): a previous incarnation's torn tail is never appended after, so the
// only incomplete frame a segment can contain is its last one.  Replay
// therefore distinguishes two failure shapes:
//
//   * torn tail  — the final frame of a segment is incomplete (fewer than 8
//     header bytes, fewer than `len` payload bytes, or a zero length from
//     file-system pre-allocation).  This is the expected residue of a crash
//     mid-append; replay stops that segment at the last whole record and
//     continues with the next segment.
//   * corruption — a frame is fully present but its CRC does not match.
//     That is never produced by a crash of this code (appends are
//     sequential) and replay refuses the log with InvalidArgument.
//
// Durability knob (SyncPolicy): Always fdatasyncs after every append (an
// append that returned Ok survives SIGKILL); GroupCommit fdatasyncs once per
// `group_commit_bytes` of appended frames (bounded loss window); Never
// leaves syncing to the kernel (checkpoint/clean-close only).
//
// Fault injection (tests): fail-on-Nth-append, short-write (a torn frame is
// left on disk, as a crash would), and fsync failure.  ANY injected or real
// I/O failure poisons the log: every subsequent append returns Unavailable.
// A log that may have lost a write must stop acknowledging new ones — the
// caller treats the node as failed and lets the repair machinery take over.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lds::storage {

enum class SyncPolicy : std::uint8_t { Always, GroupCommit, Never };

const char* sync_policy_name(SyncPolicy p);
std::optional<SyncPolicy> parse_sync_policy(std::string_view name);

/// The user-facing durability knob carried by LdsCluster::Options and
/// store::StoreOptions; the Wal consumes sync/group_commit/segment fields,
/// the backend consumes checkpoint_bytes.
struct DurabilityPolicy {
  SyncPolicy sync = SyncPolicy::Always;
  /// GroupCommit: fdatasync once at least this many frame bytes are
  /// unsynced.
  std::uint64_t group_commit_bytes = 256 * 1024;
  /// Rotate to a new segment once the current one reaches this size.
  std::uint64_t segment_bytes = 8ull * 1024 * 1024;
  /// Backend: checkpoint + truncate the WAL after this many appended bytes.
  std::uint64_t checkpoint_bytes = 32ull * 1024 * 1024;
};

/// Test hooks.  Counters tick down per append; -1 disarms.
struct WalFaults {
  /// Fail the Nth append from now (0 = the very next one) with an injected
  /// write error.
  std::int64_t fail_append_after = -1;
  /// The next append writes only half its frame, then fails — leaves a torn
  /// record on disk exactly as a crash mid-write would.
  bool short_write_next = false;
  /// The next fdatasync fails (models EIO on flush).
  bool fail_fsync_next = false;
};

struct WalStats {
  std::uint64_t appends = 0;
  std::uint64_t appended_bytes = 0;  ///< frame bytes (header + payload)
  std::uint64_t syncs = 0;
  std::uint64_t rotations = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t replayed_bytes = 0;
  std::uint64_t torn_tail_bytes = 0;  ///< bytes discarded at segment tails
};

class Wal {
 public:
  /// Opens the log directory (creating it if absent), indexes existing
  /// segments, and starts a fresh segment for new appends.  Call replay()
  /// before the first append to read surviving records.
  static Result<std::unique_ptr<Wal>> open(std::string dir,
                                           DurabilityPolicy policy);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one record; on Ok the record is durable per the sync policy.
  Status append(const std::uint8_t* payload, std::size_t len);
  Status append(const Bytes& payload) {
    return append(payload.data(), payload.size());
  }

  /// Explicit fdatasync of unsynced appends (GroupCommit/Never tails,
  /// clean shutdown).  No-op when nothing is pending.
  Status sync();

  /// Deliver every surviving record in append order, skipping segments with
  /// seq < floor_seq (records subsumed by a checkpoint).  Torn segment
  /// tails are tolerated (see file comment); mid-log corruption returns
  /// InvalidArgument.
  using RecordFn = std::function<void(const std::uint8_t* payload,
                                      std::size_t len)>;
  Status replay(std::uint64_t floor_seq, const RecordFn& fn);

  /// Sequence number of the segment new appends go to.
  std::uint64_t current_segment() const { return seq_; }

  /// Seal the current segment and start the next (checkpoint protocol:
  /// rotate, snapshot, then drop_through(sealed)).  Syncs the sealed
  /// segment first.
  Status rotate();

  /// Delete every sealed segment with seq <= `seq` (never the current one).
  Status drop_through(std::uint64_t seq);

  void inject_faults(const WalFaults& f) { faults_ = f; }
  bool poisoned() const { return !poison_.ok(); }
  const Status& poison_status() const { return poison_; }
  const WalStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

 private:
  Wal(std::string dir, DurabilityPolicy policy)
      : dir_(std::move(dir)), policy_(policy) {}

  std::string segment_path(std::uint64_t seq) const;
  Status open_segment(std::uint64_t seq);
  Status do_sync();
  Status poison(Status why);

  std::string dir_;
  DurabilityPolicy policy_;
  std::vector<std::uint64_t> sealed_;  ///< sorted seqs of read-only segments
  std::uint64_t seq_ = 1;              ///< segment receiving appends
  int fd_ = -1;
  std::uint64_t cur_bytes_ = 0;
  std::uint64_t unsynced_bytes_ = 0;
  WalFaults faults_;
  Status poison_ = Status::Ok();
  WalStats stats_;
};

}  // namespace lds::storage
