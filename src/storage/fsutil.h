// Small POSIX file helpers shared by the storage engine (checkpoint,
// manifest) and tools (atomic port files): whole-file read, atomic
// write-temp-then-rename publish, and directory wipe.
#pragma once

#include <string>

#include "common/status.h"
#include "common/types.h"

namespace lds::storage {

/// Read an entire file into `out`.  NotFound when the file does not exist.
Status read_file_bytes(const std::string& path, Bytes* out);

/// Publish `data` at `path` atomically: write `<path>.tmp`, fdatasync it,
/// rename over `path`, fsync the directory.  A reader either sees the old
/// complete file or the new complete file, never a partial write.
Status atomic_write_file(const std::string& path, const std::uint8_t* data,
                         std::size_t len);
Status atomic_write_file(const std::string& path, const Bytes& data);
Status atomic_write_file(const std::string& path, const std::string& text);

/// Remove every entry inside `dir` (recursively), keeping/creating the
/// directory itself — the replace_l2 wipe before a repaired server reopens
/// its backend from empty.
Status wipe_dir(const std::string& dir);

}  // namespace lds::storage
