#include "storage/crc32c.h"

#include <array>

namespace lds::storage {

namespace {

// Slicing-by-4 tables: table[0] is the classic byte-at-a-time table for the
// reflected Castagnoli polynomial; table[k] folds a byte that sits k bytes
// ahead of the current CRC window.  Built once, on first use.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Tables() {
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (c >> 1) ^ kPoly : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t len) {
  const auto& tb = tables().t;
  std::uint32_t c = crc ^ 0xffffffffu;
  while (len >= 4) {
    c ^= static_cast<std::uint32_t>(data[0]) |
         (static_cast<std::uint32_t>(data[1]) << 8) |
         (static_cast<std::uint32_t>(data[2]) << 16) |
         (static_cast<std::uint32_t>(data[3]) << 24);
    c = tb[3][c & 0xffu] ^ tb[2][(c >> 8) & 0xffu] ^ tb[1][(c >> 16) & 0xffu] ^
        tb[0][c >> 24];
    data += 4;
    len -= 4;
  }
  while (len--) {
    c = (c >> 8) ^ tb[0][(c ^ *data++) & 0xffu];
  }
  return c ^ 0xffffffffu;
}

std::uint32_t crc32c(const std::uint8_t* data, std::size_t len) {
  return crc32c_extend(0, data, len);
}

}  // namespace lds::storage
