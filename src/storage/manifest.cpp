#include "storage/manifest.h"

#include <filesystem>
#include <system_error>

#include "net/codec.h"
#include "storage/crc32c.h"
#include "storage/fsutil.h"

namespace lds::storage {

namespace {
constexpr std::uint32_t kMagic = 0x4d53444cu;  // "LDSM" little-endian
constexpr std::uint8_t kVersion = 1;
}  // namespace

Result<std::optional<Manifest>> Manifest::load(const std::string& dir,
                                               const std::string& file) {
  Bytes data;
  const std::string path = dir + "/" + file;
  if (auto st = read_file_bytes(path, &data); !st.ok()) {
    if (st.code() == StatusCode::kNotFound) {
      return std::optional<Manifest>(std::nullopt);
    }
    return st;
  }
  net::codec::Reader r(data.data(), data.size());
  std::uint32_t magic = 0;
  if (!r.u32(&magic) || magic != kMagic) {
    return Status::InvalidArgument("manifest: bad magic in " + path);
  }
  if (data.size() < 8) {
    return Status::InvalidArgument("manifest: truncated " + path);
  }
  const std::uint32_t want =
      crc32c(data.data() + 4, data.size() - 8);  // after magic, before crc
  std::uint8_t version = 0;
  std::uint32_t count = 0;
  if (!r.u8(&version) || version != kVersion) {
    return Status::InvalidArgument("manifest: unsupported version in " + path);
  }
  if (!r.u32(&count)) {
    return Status::InvalidArgument("manifest: truncated " + path);
  }
  Manifest m;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string k;
    std::string v;
    if (!r.blob(&k) || !r.blob(&v)) {
      return Status::InvalidArgument("manifest: truncated entry in " + path);
    }
    m.entries_[std::move(k)] = std::move(v);
  }
  std::uint32_t crc = 0;
  if (!r.u32(&crc) || !r.exhausted() || crc != want) {
    return Status::InvalidArgument("manifest: crc mismatch in " + path);
  }
  return std::optional<Manifest>(std::move(m));
}

Status Manifest::store(const std::string& dir,
                       const std::string& file) const {
  net::codec::Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [k, v] : entries_) {
    w.blob(k);
    w.blob(v);
  }
  Bytes data = std::move(w).take();
  net::codec::Writer tail;
  tail.u32(crc32c(data.data() + 4, data.size() - 4));
  const Bytes crc = std::move(tail).take();
  data.insert(data.end(), crc.begin(), crc.end());
  return atomic_write_file(dir + "/" + file, data);
}

Status Manifest::verify_or_write(const std::string& dir,
                                 const std::string& file) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("manifest: create " + dir + ": " +
                               ec.message());
  }
  auto loaded = load(dir, file);
  if (!loaded.ok()) return loaded.status();
  if (!loaded.value().has_value()) return store(dir, file);
  const Manifest& disk = *loaded.value();
  for (const auto& [k, v] : entries_) {
    auto dv = disk.get(k);
    if (!dv) {
      return Status::InvalidArgument("manifest mismatch in " + dir + ": " + k +
                                     " missing on disk (requested \"" + v +
                                     "\")");
    }
    if (*dv != v) {
      return Status::InvalidArgument("manifest mismatch in " + dir + ": " + k +
                                     " recorded \"" + *dv +
                                     "\", requested \"" + v + "\"");
    }
  }
  for (const auto& [k, v] : disk.entries()) {
    if (!entries_.contains(k)) {
      return Status::InvalidArgument("manifest mismatch in " + dir + ": " + k +
                                     " recorded \"" + v +
                                     "\" but not requested");
    }
  }
  return Status::Ok();
}

}  // namespace lds::storage
