// storage::Checkpoint — an atomic point-in-time snapshot of one L2 server's
// element map, paired with the WAL truncation protocol.
//
// On-disk layout (`CHECKPOINT`, published via write-temp-then-rename):
//
//   u32 magic 'LDSK' | u8 version | u64 wal_floor | u32 count
//   count x ( u32 obj | u64 tag.z | i32 tag.w | u32 elen | element )
//   u32 crc32c(everything after magic)
//
// `wal_floor` is the first WAL segment NOT subsumed by this snapshot.  The
// checkpoint protocol (DurableBackend::checkpoint_now) is:
//
//   1. rotate the WAL (seal segment S; appends go to S+1),
//   2. write the snapshot with wal_floor = S+1 (atomic rename),
//   3. delete segments <= S.
//
// A crash between any two steps is safe: recovery loads the newest
// CHECKPOINT, then replays only WAL segments >= wal_floor — segments that
// step 3 never got to delete are skipped by the floor, and replaying a
// record the snapshot already contains is idempotent (newer-tag-wins).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lds::storage {

struct CheckpointData {
  std::uint64_t wal_floor = 0;
  struct Entry {
    ObjectId obj = 0;
    Tag tag;
    Bytes element;
  };
  std::vector<Entry> entries;
};

/// Atomically publish `dir`/CHECKPOINT.
Status write_checkpoint(const std::string& dir, const CheckpointData& data);

/// Load `dir`/CHECKPOINT.  Ok + nullopt when absent; InvalidArgument on a
/// corrupt file (a torn tmp file never becomes CHECKPOINT, so corruption
/// here means real damage, not a crash).
Result<std::optional<CheckpointData>> read_checkpoint(const std::string& dir);

}  // namespace lds::storage
