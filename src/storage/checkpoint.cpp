#include "storage/checkpoint.h"

#include "net/codec.h"
#include "storage/crc32c.h"
#include "storage/fsutil.h"

namespace lds::storage {

namespace {
constexpr std::uint32_t kMagic = 0x4b53444cu;  // "LDSK" little-endian
constexpr std::uint8_t kVersion = 1;
constexpr const char* kFileName = "CHECKPOINT";
}  // namespace

Status write_checkpoint(const std::string& dir, const CheckpointData& data) {
  net::codec::Writer w(64 + data.entries.size() * 32);
  w.u32(kMagic);
  w.u8(kVersion);
  w.u64(data.wal_floor);
  w.u32(static_cast<std::uint32_t>(data.entries.size()));
  for (const auto& e : data.entries) {
    w.u32(e.obj);
    w.tag(e.tag);
    w.blob(e.element);
  }
  Bytes body = std::move(w).take();
  net::codec::Writer tail;
  tail.u32(crc32c(body.data() + 4, body.size() - 4));
  const Bytes crc = std::move(tail).take();
  body.insert(body.end(), crc.begin(), crc.end());
  return atomic_write_file(dir + "/" + kFileName, body);
}

Result<std::optional<CheckpointData>> read_checkpoint(const std::string& dir) {
  const std::string path = dir + "/" + kFileName;
  Bytes data;
  if (auto st = read_file_bytes(path, &data); !st.ok()) {
    if (st.code() == StatusCode::kNotFound) {
      return std::optional<CheckpointData>(std::nullopt);
    }
    return st;
  }
  if (data.size() < 21) {
    return Status::InvalidArgument("checkpoint: truncated " + path);
  }
  net::codec::Reader r(data.data(), data.size());
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  if (!r.u32(&magic) || magic != kMagic) {
    return Status::InvalidArgument("checkpoint: bad magic in " + path);
  }
  if (!r.u8(&version) || version != kVersion) {
    return Status::InvalidArgument("checkpoint: unsupported version in " +
                                   path);
  }
  const std::uint32_t want = crc32c(data.data() + 4, data.size() - 8);
  CheckpointData out;
  std::uint32_t count = 0;
  if (!r.u64(&out.wal_floor) || !r.u32(&count)) {
    return Status::InvalidArgument("checkpoint: truncated header in " + path);
  }
  out.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CheckpointData::Entry e;
    if (!r.u32(&e.obj) || !r.tag(&e.tag) || !r.blob(&e.element)) {
      return Status::InvalidArgument("checkpoint: truncated entry in " + path);
    }
    out.entries.push_back(std::move(e));
  }
  std::uint32_t crc = 0;
  if (!r.u32(&crc) || !r.exhausted() || crc != want) {
    return Status::InvalidArgument("checkpoint: crc mismatch in " + path);
  }
  return std::optional<CheckpointData>(std::move(out));
}

}  // namespace lds::storage
