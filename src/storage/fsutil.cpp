#include "storage/fsutil.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace lds::storage {

namespace fs = std::filesystem;

namespace {
std::string errno_msg(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}
}  // namespace

Status read_file_bytes(const std::string& path, Bytes* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path);
    return Status::Unavailable(errno_msg("open"));
  }
  out->clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable(errno_msg("read"));
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return Status::Ok();
}

Status atomic_write_file(const std::string& path, const std::uint8_t* data,
                         std::size_t len) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return Status::Unavailable(errno_msg("open tmp"));
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable(errno_msg("write tmp"));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fdatasync(fd) != 0) {
    ::close(fd);
    return Status::Unavailable(errno_msg("fdatasync tmp"));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Unavailable(errno_msg("rename"));
  }
  // fsync the directory so the rename itself survives power loss.
  const std::string dir = fs::path(path).parent_path().string();
  const int dfd =
      ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::Ok();
}

Status atomic_write_file(const std::string& path, const Bytes& data) {
  return atomic_write_file(path, data.data(), data.size());
}

Status atomic_write_file(const std::string& path, const std::string& text) {
  return atomic_write_file(
      path, reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
}

Status wipe_dir(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) {
    fs::create_directories(dir, ec);
    if (ec) return Status::Unavailable("wipe_dir: create: " + ec.message());
    return Status::Ok();
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    fs::remove_all(entry.path(), ec);
    if (ec) return Status::Unavailable("wipe_dir: remove: " + ec.message());
  }
  if (ec) return Status::Unavailable("wipe_dir: scan: " + ec.message());
  return Status::Ok();
}

}  // namespace lds::storage
