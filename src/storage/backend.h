// storage::Backend — the durability seam of ServerL2.
//
// An L2 server owns at most one Backend.  RAM-only deployments own none
// (the default: nothing changes for simulation workloads).  A durable
// server calls put()/forget() synchronously inside its store path, BEFORE
// acknowledging the write — an AckCodeElem therefore certifies that the
// element survives SIGKILL under SyncPolicy::Always.
//
// DurableBackend composes the two persistent structures:
//   * a Wal of Put/Forget records (`u8 kind | u32 obj | tag | u32 len |
//     element`), replayed newest-tag-wins;
//   * a Checkpoint snapshot that bounds replay work, written through the
//     rotate/snapshot/drop protocol documented in checkpoint.h.  The
//     snapshot body comes from a SnapshotSource the owning server installs
//     (its live element map), so a checkpoint never blocks on replaying the
//     log it is about to truncate.
//
// Any I/O failure — injected or real — poisons the backend: every later
// put() returns Unavailable and the server stops acknowledging writes,
// turning a disk that may have lost data into an ordinary server failure
// the f2/repair machinery already handles.
//
// KeyLog is a sibling structure for the store layer: an append-only log of
// interned keys whose record *ordinal* is the key's ObjectId, making the
// key -> object binding stable across restarts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/wal.h"

namespace lds::storage {

class Backend {
 public:
  struct Entry {
    Tag tag;
    Bytes element;
  };

  /// Enumerates the owner's live (obj, tag, element) map for a checkpoint.
  using SnapshotSink =
      std::function<void(ObjectId, const Tag&, const Bytes&)>;
  using SnapshotSource = std::function<void(const SnapshotSink&)>;

  virtual ~Backend() = default;

  /// State recovered at open (checkpoint + WAL replay, last-record-wins);
  /// the owning server adopts it in its constructor.  Ordered so recovery
  /// sweeps are deterministic.
  virtual const std::map<ObjectId, Entry>& recovered() const = 0;

  /// EVERY surviving (obj, tag, element) record — checkpoint entries plus
  /// each WAL put, in replay order.  The cluster-level recovery sweep needs
  /// overwritten versions too: at SIGKILL each server holds only its newest
  /// tag, and with enough distinct in-flight tags no single tag may have k
  /// live copies — but a tag that was certified durable still has >= k
  /// copies HERE unless checkpoint truncation dropped them (see README
  /// "Durability" for the bound).
  struct VersionedEntry {
    ObjectId obj = 0;
    Tag tag;
    Bytes element;
  };
  virtual const std::vector<VersionedEntry>& recovered_versions() const = 0;

  /// Install the live snapshot enumerator (enables checkpointing).
  virtual void set_snapshot_source(SnapshotSource source) = 0;

  /// Persist one element, durable per policy on Ok.  Unavailable once
  /// poisoned.  May trigger a checkpoint per DurabilityPolicy.
  virtual Status put(ObjectId obj, Tag tag, const Bytes& element) = 0;

  /// Persist a tombstone (forget_object).
  virtual Status forget(ObjectId obj) = 0;

  /// Force a checkpoint now (tests, bench, clean shutdown).
  virtual Status checkpoint_now() = 0;

  /// Flush unsynced WAL appends (GroupCommit/Never clean shutdown).
  virtual Status sync() = 0;

  virtual bool poisoned() const = 0;

  /// Fault-injection passthrough to the underlying WAL (tests).
  virtual void inject_faults(const WalFaults& faults) = 0;

  virtual const WalStats& wal_stats() const = 0;
};

class DurableBackend final : public Backend {
 public:
  /// Open (creating `dir` if needed) and recover: load CHECKPOINT, replay
  /// WAL segments >= its floor.  InvalidArgument on corruption.
  static Result<std::unique_ptr<DurableBackend>> open(std::string dir,
                                                      DurabilityPolicy policy);

  const std::map<ObjectId, Entry>& recovered() const override {
    return recovered_;
  }
  const std::vector<VersionedEntry>& recovered_versions() const override {
    return versions_;
  }
  void set_snapshot_source(SnapshotSource source) override {
    snapshot_ = std::move(source);
  }
  Status put(ObjectId obj, Tag tag, const Bytes& element) override;
  Status forget(ObjectId obj) override;
  Status checkpoint_now() override;
  Status sync() override { return wal_->sync(); }
  bool poisoned() const override { return wal_->poisoned(); }
  void inject_faults(const WalFaults& faults) override {
    wal_->inject_faults(faults);
  }
  const WalStats& wal_stats() const override { return wal_->stats(); }

  const std::string& dir() const { return dir_; }

 private:
  DurableBackend(std::string dir, DurabilityPolicy policy)
      : dir_(std::move(dir)), policy_(policy) {}

  std::string dir_;
  DurabilityPolicy policy_;
  std::unique_ptr<Wal> wal_;
  std::map<ObjectId, Entry> recovered_;
  std::vector<VersionedEntry> versions_;
  SnapshotSource snapshot_;
  std::uint64_t bytes_since_checkpoint_ = 0;
};

/// Append-only durable log of interned keys (store layer).  The i-th
/// surviving record is the key bound to ObjectId i; replay at startup
/// reproduces the exact intern order of every previous incarnation.
class KeyLog {
 public:
  static Result<std::unique_ptr<KeyLog>> open(std::string dir,
                                              DurabilityPolicy policy);

  /// Keys recovered at open, in ObjectId order.
  const std::vector<std::string>& recovered() const { return recovered_; }

  /// Persist one newly interned key (always fdatasynced: losing a key
  /// binding would re-number every later object on restart).
  Status append(const std::string& key);

  bool poisoned() const { return wal_->poisoned(); }

 private:
  explicit KeyLog(std::unique_ptr<Wal> wal) : wal_(std::move(wal)) {}

  std::unique_ptr<Wal> wal_;
  std::vector<std::string> recovered_;
};

}  // namespace lds::storage
