#include "storage/backend.h"

#include <utility>

#include "net/codec.h"
#include "storage/checkpoint.h"

namespace lds::storage {

namespace {

enum RecordKind : std::uint8_t { kPut = 1, kForget = 2 };

Bytes encode_put(ObjectId obj, Tag tag, const Bytes& element) {
  net::codec::Writer w(24 + element.size());
  w.u8(kPut);
  w.u32(obj);
  w.tag(tag);
  w.blob(element);
  return std::move(w).take();
}

Bytes encode_forget(ObjectId obj) {
  net::codec::Writer w(8);
  w.u8(kForget);
  w.u32(obj);
  return std::move(w).take();
}

}  // namespace

Result<std::unique_ptr<DurableBackend>> DurableBackend::open(
    std::string dir, DurabilityPolicy policy) {
  auto be =
      std::unique_ptr<DurableBackend>(new DurableBackend(dir, policy));
  auto ckpt = read_checkpoint(dir);
  if (!ckpt.ok()) return ckpt.status();
  std::uint64_t floor = 0;
  if (ckpt.value().has_value()) {
    floor = ckpt.value()->wal_floor;
    for (auto& e : ckpt.value()->entries) {
      be->versions_.push_back(VersionedEntry{e.obj, e.tag, e.element});
      be->recovered_[e.obj] = Entry{e.tag, std::move(e.element)};
    }
  }
  auto wal = Wal::open(std::move(dir), policy);
  if (!wal.ok()) return wal.status();
  be->wal_ = std::move(wal).value();
  Status corrupt = Status::Ok();
  auto st = be->wal_->replay(
      floor, [&](const std::uint8_t* payload, std::size_t len) {
        if (!corrupt.ok()) return;
        net::codec::Reader r(payload, len);
        std::uint8_t kind = 0;
        std::uint32_t obj = 0;
        if (!r.u8(&kind) || !r.u32(&obj)) {
          corrupt = Status::InvalidArgument("backend: malformed wal record");
          return;
        }
        if (kind == kForget) {
          be->recovered_.erase(obj);
          // A tombstone models disk replacement: resurrecting any pre-forget
          // version during a cluster recovery sweep would be wrong too.
          std::erase_if(be->versions_, [obj](const VersionedEntry& v) {
            return v.obj == obj;
          });
          return;
        }
        if (kind != kPut) {
          corrupt = Status::InvalidArgument("backend: unknown wal record");
          return;
        }
        Tag tag;
        Bytes element;
        if (!r.tag(&tag) || !r.blob(&element) || !r.exhausted()) {
          corrupt = Status::InvalidArgument("backend: malformed put record");
          return;
        }
        // Last-record-wins.  The normal store path is tag-monotone per
        // object, where this equals newer-wins; the one deliberate
        // exception is the cluster recovery sweep, which may DOWNGRADE a
        // server holding a divergent unacknowledged tag to the chosen
        // recovery tag — that downgrade must stick across the next restart.
        be->versions_.push_back(VersionedEntry{obj, tag, element});
        be->recovered_[obj] = Entry{tag, std::move(element)};
      });
  if (!st.ok()) return st;
  if (!corrupt.ok()) return corrupt;
  return be;
}

Status DurableBackend::put(ObjectId obj, Tag tag, const Bytes& element) {
  const Bytes rec = encode_put(obj, tag, element);
  if (auto st = wal_->append(rec); !st.ok()) return st;
  bytes_since_checkpoint_ += rec.size();
  if (bytes_since_checkpoint_ >= policy_.checkpoint_bytes && snapshot_) {
    return checkpoint_now();
  }
  return Status::Ok();
}

Status DurableBackend::forget(ObjectId obj) {
  return wal_->append(encode_forget(obj));
}

Status DurableBackend::checkpoint_now() {
  if (wal_->poisoned()) return wal_->poison_status();
  if (!snapshot_) {
    return Status::InvalidArgument("backend: no snapshot source installed");
  }
  if (auto st = wal_->sync(); !st.ok()) return st;
  const std::uint64_t sealed_through = wal_->current_segment();
  if (auto st = wal_->rotate(); !st.ok()) return st;
  CheckpointData data;
  data.wal_floor = sealed_through + 1;
  snapshot_([&](ObjectId obj, const Tag& tag, const Bytes& element) {
    // (t0, c0) defaults are derivable from the code; persisting them would
    // only bloat the snapshot.
    if (tag == kTag0) return;
    data.entries.push_back(CheckpointData::Entry{obj, tag, element});
  });
  if (auto st = write_checkpoint(dir_, data); !st.ok()) return st;
  bytes_since_checkpoint_ = 0;
  // Segments the snapshot subsumes; a crash before this delete is covered
  // by the floor at recovery.
  return wal_->drop_through(sealed_through);
}

// ---- KeyLog -----------------------------------------------------------------

Result<std::unique_ptr<KeyLog>> KeyLog::open(std::string dir,
                                             DurabilityPolicy policy) {
  // Key bindings are always synced: a lost binding would shift every later
  // ObjectId on the next restart.
  policy.sync = SyncPolicy::Always;
  auto wal = Wal::open(std::move(dir), policy);
  if (!wal.ok()) return wal.status();
  auto log = std::unique_ptr<KeyLog>(new KeyLog(std::move(wal).value()));
  auto st = log->wal_->replay(
      0, [&](const std::uint8_t* payload, std::size_t len) {
        log->recovered_.emplace_back(reinterpret_cast<const char*>(payload),
                                     len);
      });
  if (!st.ok()) return st;
  return log;
}

Status KeyLog::append(const std::string& key) {
  if (key.empty()) {
    // A zero-length frame is the WAL's end-of-segment sentinel; the store
    // rejects empty keys long before this, but never write one.
    return Status::InvalidArgument("keylog: empty key");
  }
  return wal_->append(reinterpret_cast<const std::uint8_t*>(key.data()),
                      key.size());
}

}  // namespace lds::storage
