// Common strong types shared by every module of the LDS reproduction.
//
// The paper (Konwar et al., PODC 2017) models a system of processes with
// totally-ordered unique ids: writers W, readers R, and servers S organised
// into two layers L1 and L2.  We give each process a NodeId; the roles are
// tracked separately so that the network layer can classify links
// (client<->L1, L1<->L1, L1<->L2, ...) for latency and cost accounting.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace lds {

/// Raw bytes.  Object values, coded elements and helper data are all byte
/// strings; one byte is one GF(2^8) symbol.
using Bytes = std::vector<std::uint8_t>;

/// Identifier of a process (writer, reader, L1 server, or L2 server).
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Identifier of an object in a multi-object deployment.  A single-object
/// system simply uses object 0 everywhere (Section V runs N independent
/// instances of LDS; we key per-object server state by ObjectId).
using ObjectId = std::uint32_t;

/// Identifier of a client operation (read or write) or internal operation.
/// Unique across the execution: high 32 bits = client NodeId, low 32 bits =
/// per-client sequence number.  Carried inside every message so that the
/// cost tracker can attribute bytes to operations and so that server-side
/// per-read state (the key-value set K of Fig. 2) is keyed unambiguously.
using OpId = std::uint64_t;
inline constexpr OpId kNoOp = 0;

constexpr OpId make_op_id(NodeId client, std::uint32_t seq) {
  return (static_cast<OpId>(static_cast<std::uint32_t>(client)) << 32) | seq;
}
constexpr NodeId op_client(OpId op) {
  return static_cast<NodeId>(static_cast<std::int32_t>(op >> 32));
}
constexpr std::uint32_t op_seq(OpId op) {
  return static_cast<std::uint32_t>(op & 0xffffffffu);
}

/// Role of a process.  Used for link classification only; the protocol code
/// never branches on Role.
enum class Role : std::uint8_t { Writer, Reader, ServerL1, ServerL2, Other };

const char* role_name(Role r);

/// A tag is the version-control token of the paper: a pair (z, w) where z is
/// an integer and w a writer id, ordered lexicographically (Section III).
/// The relation > imposes a total order on the set of tags.
struct Tag {
  std::uint64_t z = 0;  ///< integer component
  NodeId w = 0;         ///< writer id component

  friend constexpr auto operator<=>(const Tag& a, const Tag& b) {
    if (auto c = a.z <=> b.z; c != 0) return c;
    return a.w <=> b.w;
  }
  friend constexpr bool operator==(const Tag&, const Tag&) = default;

  std::string to_string() const;
};

/// The initial tag t0 associated with the distinguished initial value v0.
inline constexpr Tag kTag0{0, 0};

/// Typed version token of the client API: a Tag plus a "known" marker.  Puts
/// and gets return a Version; conditional puts (put_if_version) take one.
/// Tags order versions totally (Section III), so Version comparisons are
/// tag-major; an unknown Version (default-constructed) orders below every
/// known one and never matches a stored tag in a conditional put.
class Version {
 public:
  constexpr Version() = default;
  constexpr explicit Version(Tag t) : tag_(t), known_(true) {}

  constexpr bool known() const { return known_; }
  constexpr Tag tag() const { return tag_; }

  friend constexpr auto operator<=>(const Version& a, const Version& b) {
    if (auto c = a.known_ <=> b.known_; c != 0) return c;
    return a.tag_ <=> b.tag_;
  }
  friend constexpr bool operator==(const Version&, const Version&) = default;

  std::string to_string() const {
    return known_ ? tag_.to_string() : std::string("unknown");
  }

 private:
  Tag tag_{};
  bool known_ = false;
};

struct TagHash {
  std::size_t operator()(const Tag& t) const noexcept {
    return std::hash<std::uint64_t>()(t.z * 0x9e3779b97f4a7c15ull ^
                                      static_cast<std::uint64_t>(t.w));
  }
};

}  // namespace lds
