#include "common/format.h"

#include <cstdio>

namespace lds {

const char* role_name(Role r) {
  switch (r) {
    case Role::Writer: return "writer";
    case Role::Reader: return "reader";
    case Role::ServerL1: return "L1";
    case Role::ServerL2: return "L2";
    case Role::Other: return "other";
  }
  return "?";
}

std::string Tag::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "(%llu,%d)",
                static_cast<unsigned long long>(z), static_cast<int>(w));
  return buf;
}

std::string node_name(Role role, NodeId id) {
  char buf[32];
  switch (role) {
    case Role::Writer: std::snprintf(buf, sizeof buf, "w%d", id); break;
    case Role::Reader: std::snprintf(buf, sizeof buf, "r%d", id); break;
    case Role::ServerL1: std::snprintf(buf, sizeof buf, "s1:%d", id); break;
    case Role::ServerL2: std::snprintf(buf, sizeof buf, "s2:%d", id); break;
    default: std::snprintf(buf, sizeof buf, "p%d", id); break;
  }
  return buf;
}

std::string bytes_preview(const Bytes& b, std::size_t max_shown) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  const std::size_t shown = b.size() < max_shown ? b.size() : max_shown;
  for (std::size_t i = 0; i < shown; ++i) {
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
  }
  if (b.size() > shown) out += "..";
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, " (%zu B)", b.size());
  return out + suffix;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace lds
