// Tiny formatting helpers for human-readable traces, bench tables and tests.
#pragma once

#include <string>

#include "common/types.h"

namespace lds {

/// "w3", "r7", "s1:4", "s2:12" style process names given role and id.
std::string node_name(Role role, NodeId id);

/// Hex preview of a byte string: "a1b2c3.. (128 B)".
std::string bytes_preview(const Bytes& b, std::size_t max_shown = 8);

/// Fixed-width table cell helpers used by the bench binaries.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);
std::string fmt_double(double v, int precision = 3);

}  // namespace lds
