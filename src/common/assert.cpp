#include "common/assert.h"

namespace lds::detail {

[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const char* msg) {
  std::fprintf(stderr, "[lds] %s violated: %s\n  at %s:%d\n  %s\n", kind, expr,
               file, line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace lds::detail
