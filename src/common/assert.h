// Contract checking used throughout the library.
//
// LDS_REQUIRE  - precondition on public API; always on.
// LDS_CHECK    - internal invariant; always on (the simulator is the test
//                oracle, silent corruption would invalidate experiments).
// Violations print the failing expression and abort; tests exercise the
// failure paths with EXPECT_DEATH where meaningful.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lds::detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const char* msg);
}  // namespace lds::detail

#define LDS_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::lds::detail::contract_failure("precondition", #expr, __FILE__,      \
                                      __LINE__, msg);                       \
    }                                                                       \
  } while (0)

#define LDS_CHECK(expr, msg)                                                \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::lds::detail::contract_failure("invariant", #expr, __FILE__,         \
                                      __LINE__, msg);                       \
    }                                                                       \
  } while (0)
