// Status / Result<T>: the error taxonomy of the client-facing API.
//
// The seed-era results carried `bool ok` plus a free-text error string, which
// loses *why* an operation failed (admission reject vs. deadline vs. version
// mismatch) and forces every layer to invent its own convention.  This is the
// RocksDB `Status` idiom adapted to the LDS store: a small fixed code set, an
// optional context message (shard / op / key), and a `Result<T>` carrier for
// sync wrappers that return a value OR a failure.
//
// The taxonomy is closed on purpose — every client-visible failure of the
// store maps onto exactly one code:
//
//   Ok               operation completed
//   NotFound         get of a key that was never written on its shard
//   AdmissionReject  put refused: the shard's in-flight limit is reached
//   DeadlineExceeded OpOptions::deadline expired before completion
//   Aborted          conditional put: the expected version did not match
//   Unavailable      the client was closed (or the service is shutting down)
//   InvalidArgument  malformed request (empty key, bad options)
#pragma once

#include <string>
#include <utility>

#include "common/assert.h"

namespace lds {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,
  kAdmissionReject,
  kDeadlineExceeded,
  kAborted,
  kUnavailable,
  kInvalidArgument,
};

const char* status_code_name(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is Ok (the common case costs no allocation).
  Status() = default;

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = {}) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AdmissionReject(std::string msg = {}) {
    return Status(StatusCode::kAdmissionReject, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = {}) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg = {}) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg = {}) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = {}) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Rebuild a Status from its code — the wire-decoding path (store RPC
  /// replies carry the code + context message).  Ok ignores the message.
  static Status FromCode(StatusCode code, std::string msg = {}) {
    return code == StatusCode::kOk ? Ok() : Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  bool is(StatusCode c) const { return code_ == c; }
  const std::string& message() const { return msg_; }

  /// "AdmissionReject: shard 3 at limit 1024" (or just the code name).
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // messages are context, not identity
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// Value-or-Status carrier for synchronous wrappers.  Implicitly
/// constructible from either side so call sites read naturally:
///
///   Result<Version> r = client.put_sync("k", value);
///   if (!r.ok()) return r.status();
///   use(r.value());
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    LDS_REQUIRE(!status_.ok(), "Result: Ok status requires a value");
  }

  bool ok() const { return status_.ok(); }
  explicit operator bool() const { return ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LDS_REQUIRE(ok(), "Result::value: no value (status not Ok)");
    return value_;
  }
  T& value() & {
    LDS_REQUIRE(ok(), "Result::value: no value (status not Ok)");
    return value_;
  }
  T&& value() && {
    LDS_REQUIRE(ok(), "Result::value: no value (status not Ok)");
    return std::move(value_);
  }
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace lds
