#include "common/status.h"

namespace lds {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAdmissionReject: return "AdmissionReject";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
  }
  return "?";
}

std::string Status::to_string() const {
  if (msg_.empty()) return status_code_name(code_);
  return std::string(status_code_name(code_)) + ": " + msg_;
}

}  // namespace lds
