// Value: an immutable, ref-counted byte buffer.
//
// The seed-era API moved `Bytes` (std::vector<uint8_t>) by value through
// every hop of a put — client -> shard router -> batch window -> writer ->
// one PUT-DATA message per L1 server — deep-copying the payload at each
// fan-out.  A Value is a shared handle to one immutable buffer: copying a
// Value bumps a refcount; the bytes are written once and never change, which
// is exactly the lifecycle of a written register value (tags version the
// data, the buffer itself is frozen at put time).
//
// Interop with seed-era call sites is deliberate:
//   * Bytes -> Value converts implicitly (moving the vector in: one
//     allocation for the control block, zero byte copies);
//   * Value -> const Bytes& converts implicitly (viewing, zero copies), so
//     existing callbacks taking `const Bytes&` — and the erasure coders,
//     which consume `const Bytes&` — keep working unchanged.
//
// Thread-safety: the buffer is immutable after construction, and
// shared_ptr's control block is atomic, so Values may be copied and read
// from any engine lane concurrently.
#pragma once

#include <cstring>
#include <memory>
#include <string_view>
#include <utility>

#include "common/types.h"

namespace lds {

class Value {
 public:
  /// Empty value (the paper's distinguished v0 when the initial value is
  /// the empty byte string).  Holds no buffer at all.
  Value() = default;

  /// Take ownership of a byte vector: one control-block allocation, no byte
  /// copy.  Implicit so `put(key, Bytes{...})` call sites keep compiling.
  Value(Bytes bytes)  // NOLINT(runtime/explicit)
      : buf_(bytes.empty()
                 ? nullptr
                 : std::make_shared<const Bytes>(std::move(bytes))) {}

  /// Share an existing immutable buffer (refcount bump only).
  explicit Value(std::shared_ptr<const Bytes> buf)
      : buf_(buf != nullptr && buf->empty() ? nullptr : std::move(buf)) {}

  /// Deep-copy construction from text, for examples and tests.
  static Value from_string(std::string_view s) {
    return Value(Bytes(s.begin(), s.end()));
  }

  const std::uint8_t* data() const {
    return buf_ == nullptr ? nullptr : buf_->data();
  }
  std::size_t size() const { return buf_ == nullptr ? 0 : buf_->size(); }
  bool empty() const { return size() == 0; }
  Bytes::const_iterator begin() const { return bytes().begin(); }
  Bytes::const_iterator end() const { return bytes().end(); }

  /// Borrow the bytes (empty singleton when the value is empty).  The
  /// reference is valid while this Value (or any copy) is alive.
  const Bytes& bytes() const {
    return buf_ == nullptr ? empty_bytes() : *buf_;
  }
  /// Implicit view so seed-era `const Bytes&` consumers (erasure coders,
  /// history checks, callbacks) accept a Value without copying.
  operator const Bytes&() const { return bytes(); }  // NOLINT

  /// Deep copy out, for callers that need to mutate.
  Bytes to_bytes() const { return bytes(); }

  /// The shared buffer (null when empty); lets containers hold the handle.
  const std::shared_ptr<const Bytes>& share() const { return buf_; }

  /// Owners of this exact buffer, for zero-copy assertions in tests.
  long use_count() const { return buf_ == nullptr ? 0 : buf_.use_count(); }
  /// True when two Values share one underlying buffer (no copy happened).
  bool same_buffer(const Value& other) const { return buf_ == other.buf_; }

  std::string to_string() const {
    return std::string(reinterpret_cast<const char*>(data()), size());
  }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.buf_ == b.buf_) return true;  // shared buffer or both empty
    return a.bytes() == b.bytes();
  }
  friend bool operator==(const Value& a, const Bytes& b) {
    return a.bytes() == b;
  }
  friend bool operator==(const Bytes& a, const Value& b) {
    return a == b.bytes();
  }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  std::shared_ptr<const Bytes> buf_;
};

}  // namespace lds
