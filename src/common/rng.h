// Seeded deterministic randomness.  Every stochastic component (latency
// models, workload generators, random schedules in tests) draws from an
// lds::Rng so that executions are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

#include "common/assert.h"
#include "common/types.h"

namespace lds {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5d5d5d5d5d5d5d5dull) : eng_(seed) {}

  std::uint64_t next_u64() { return eng_(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    LDS_REQUIRE(lo <= hi, "uniform_int: empty range");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    LDS_REQUIRE(lo <= hi, "uniform_real: empty range");
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  double exponential(double mean) {
    LDS_REQUIRE(mean > 0, "exponential: mean must be positive");
    return std::exponential_distribution<double>(1.0 / mean)(eng_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(eng_);
  }

  /// A random byte string of the given length (used as object values).
  Bytes bytes(std::size_t len) {
    Bytes out(len);
    for (auto& b : out) b = static_cast<std::uint8_t>(uniform_int(0, 255));
    return out;
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

/// SplitMix64 finalizer: a bijective avalanche mix.  Used to derive
/// well-separated child seeds from (master seed, stream index) pairs so that
/// every thread/shard of a stress run has an independent stream that is still
/// a pure function of the one master seed printed at startup.
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Non-deterministic seed for "--seed 0 = pick one" flows.  Callers must
/// print the chosen value so the run reproduces.
inline std::uint64_t entropy_seed() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace lds
