#include "harness/kill9.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "harness/stress.h"
#include "lds/history.h"
#include "storage/fsutil.h"
#include "store/remote.h"

namespace lds::harness {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-op wall-clock deadline.  Generous: a synced put under load takes
/// milliseconds, so hitting this means the server is gone (or wedged, which
/// the merged-history verdict will surface as missing completions).
constexpr double kOpDeadline = 10.0;

/// Shared recording state.  Ops are recorded AFTER they return, under one
/// mutex, with the invocation/response times captured around the blocking
/// call — History's checkers only consume the recorded timestamps, so
/// post-hoc recording preserves the real-time precedence relation exactly.
struct Recorder {
  std::mutex mu;
  core::History h;
  /// Unknown-outcome writes awaiting a tag: value bytes -> history index.
  std::map<Bytes, std::size_t> pending;
  Kill9Report* rep;

  void read_done(OpId op, ObjectId obj, NodeId client, double t_inv,
                 double t_rsp, Tag tag, Value value) {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t idx =
        h.on_invoke(op, core::OpKind::Read, obj, client, t_inv);
    h.on_response(idx, t_rsp, tag, std::move(value));
    ++rep->reads_completed;
  }
  void write_done(OpId op, ObjectId obj, NodeId client, double t_inv,
                  double t_rsp, Tag tag, Value value) {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t idx =
        h.on_invoke(op, core::OpKind::Write, obj, client, t_inv);
    h.on_response(idx, t_rsp, tag, std::move(value));
    ++rep->writes_completed;
  }
  void write_unknown(OpId op, ObjectId obj, NodeId client, double t_inv,
                     Value value) {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t idx =
        h.on_invoke(op, core::OpKind::Write, obj, client, t_inv);
    pending.emplace(value.bytes(), idx);
    ++rep->writes_unknown;
  }

  /// Bind unknown-outcome writes to the tag the server actually assigned:
  /// if any completed read returned an unknown write's (unique) value, that
  /// value IS durable under the read's tag — record it as the write's
  /// payload so P3 accounts for it.  Unmatched writes stay unbound; their
  /// values were never observed, so they constrain nothing.
  void reconcile() {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t n = h.ops().size();
    for (std::size_t i = 0; i < n; ++i) {
      const core::OpRecord& op = h.ops()[i];
      if (op.kind != core::OpKind::Read || !op.complete) continue;
      auto it = pending.find(op.value.bytes());
      if (it == pending.end()) continue;
      h.set_payload(it->second, op.tag, op.value);
      ++rep->writes_bound;
      pending.erase(it);
    }
  }
};

/// One client value, unique across the whole run: thread and sequence are
/// tattooed into the first 8 bytes (the reconciliation key is the full byte
/// string, so uniqueness makes value -> write injective).
Value make_value(std::uint32_t thread, std::uint32_t seq, std::size_t size,
                 Rng& rng) {
  Bytes b = rng.bytes(size < 8 ? 8 : size);
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<std::uint8_t>(thread >> (8 * i));
    b[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return Value(std::move(b));
}

pid_t spawn_server(const Kill9Options& opt, const std::string& port_file,
                   std::uint64_t seed) {
  std::vector<std::string> args = {
      opt.server_bin,
      "--port", "0",
      "--port-file", port_file,
      "--data-dir", opt.data_dir,
      "--sync", storage::sync_policy_name(opt.sync),
      "--shards", std::to_string(opt.shards),
      "--seed", std::to_string(seed),
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  // Flush before fork: the child's freopen would otherwise re-emit any
  // buffered parent output into the shared stdout pipe.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure, -1)
  // Child: quiet stdout so round banners do not interleave with the
  // harness's own output; stderr stays (verification failures must show).
  std::freopen("/dev/null", "w", stdout);
  ::execv(argv[0], argv.data());
  std::fprintf(stderr, "kill9: execv %s: %s\n", argv[0], std::strerror(errno));
  ::_exit(127);
}

/// Poll for the (atomically published) port file; nullopt if the child
/// exits or the timeout lapses first.  `status` receives the child's wait
/// status when it exited.
std::optional<std::uint16_t> wait_for_port(const std::string& port_file,
                                           pid_t pid, double timeout_s,
                                           int* status) {
  const auto t0 = Clock::now();
  while (seconds_since(t0) < timeout_s) {
    if (::waitpid(pid, status, WNOHANG) == pid) return std::nullopt;
    Bytes b;
    if (storage::read_file_bytes(port_file, &b).ok() && !b.empty()) {
      const unsigned long p =
          std::strtoul(reinterpret_cast<const char*>(b.data()), nullptr, 10);
      if (p > 0 && p <= 65535) return static_cast<std::uint16_t>(p);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return std::nullopt;
}

}  // namespace

Kill9Report run_kill9(const Kill9Options& opt) {
  Kill9Report rep;
  auto fail = [&rep](std::string why) {
    rep.violation = std::move(why);
    return rep;
  };
  if (opt.server_bin.empty() || opt.data_dir.empty()) {
    return fail("kill9: --server-bin and --data-dir are required");
  }
  if (opt.threads == 0 || opt.keys == 0 || opt.ops_per_round == 0) {
    return fail("kill9: threads, keys and ops-per-round must be positive");
  }
  if (!opt.keep_data) {
    if (auto st = storage::wipe_dir(opt.data_dir); !st.ok()) {
      return fail("kill9: wipe " + opt.data_dir + ": " + st.message());
    }
  }

  Recorder rec;
  rec.rep = &rep;
  const auto t0 = Clock::now();
  const std::string port_file = opt.data_dir + "/PORT";
  std::atomic<std::uint32_t> seq{0};  // value/op sequence, unique run-wide

  for (std::size_t round = 0; round <= opt.kills; ++round) {
    const bool kill_round = round < opt.kills;
    std::remove(port_file.c_str());  // never connect to a dead incarnation
    const pid_t pid = spawn_server(opt, port_file, opt.seed);
    if (pid < 0) return fail("kill9: fork failed");
    ++rep.incarnations;
    int status = 0;
    const auto port = wait_for_port(port_file, pid, 30.0, &status);
    if (!port) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return fail("kill9: incarnation " + std::to_string(round) +
                  " never published a port (exited or hung)");
    }
    Status open_st;
    auto session = store::RemoteSession::open("127.0.0.1", *port, &open_st);
    if (session == nullptr) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return fail("kill9: connect: " + open_st.to_string());
    }

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> tickets{0};
    std::vector<std::thread> workers;
    workers.reserve(opt.threads);
    for (std::size_t t = 0; t < opt.threads; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(mix_seed(opt.seed, round * opt.threads + t + 1));
        const NodeId client = static_cast<NodeId>(100 + t);
        while (!stop.load(std::memory_order_acquire)) {
          if (tickets.fetch_add(1, std::memory_order_acq_rel) >=
              opt.ops_per_round) {
            break;
          }
          const auto key_idx = static_cast<ObjectId>(
              rng.uniform_int(0, static_cast<std::int64_t>(opt.keys) - 1));
          const std::string key = "key-" + std::to_string(key_idx);
          const std::uint32_t s = seq.fetch_add(1, std::memory_order_acq_rel);
          const OpId op = make_op_id(client, s);
          if (rng.bernoulli(opt.read_fraction)) {
            const double t_inv = seconds_since(t0);
            store::GetResult r =
                session->get(key, store::ReadMode::Atomic, kOpDeadline);
            const double t_rsp = seconds_since(t0);
            if (r.ok) {
              rec.read_done(op, key_idx, client, t_inv, t_rsp, r.tag,
                            std::move(r.value));
            } else if (r.status.code() == StatusCode::kNotFound) {
              // Key never interned: the register still holds (t0, v0).  A
              // completed read of the initial value — and a real freshness
              // constraint, should a completed write exist for the key.
              rec.read_done(op, key_idx, client, t_inv, t_rsp, kTag0,
                            Value());
            } else {
              std::lock_guard<std::mutex> lk(rec.mu);
              ++rep.reads_failed;
            }
          } else {
            Value v = make_value(static_cast<std::uint32_t>(t), s,
                                 opt.value_size, rng);
            const double t_inv = seconds_since(t0);
            store::PutResult r = session->put(key, v, kOpDeadline);
            const double t_rsp = seconds_since(t0);
            if (r.ok && r.coalesced) {
              // Absorbed by a newer same-key put: durable, but linearized
              // immediately before the survivor and never readable.  Not a
              // history op (its version is the survivor's).
              std::lock_guard<std::mutex> lk(rec.mu);
              ++rep.writes_coalesced;
            } else if (r.ok) {
              rec.write_done(op, key_idx, client, t_inv, t_rsp, r.tag,
                             std::move(v));
            } else if (r.status.code() == StatusCode::kAdmissionReject ||
                       r.status.code() == StatusCode::kInvalidArgument) {
              // Rejected before reaching a writer: definitely not applied.
            } else {
              // The connection died with the reply in flight — the server
              // may have committed it.  Incomplete op; reconcile() binds
              // the tag if any read ever observes the value.
              rec.write_unknown(op, key_idx, client, t_inv, std::move(v));
            }
          }
          if (!session->connected()) break;
        }
      });
    }

    if (kill_round) {
      // SIGKILL mid-churn: wait for half the quota, then no mercy.
      const auto kt0 = Clock::now();
      while (tickets.load(std::memory_order_acquire) < opt.ops_per_round / 2 &&
             seconds_since(kt0) < 120.0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      ::kill(pid, SIGKILL);
      ++rep.kills;
      ::waitpid(pid, &status, 0);
      stop.store(true, std::memory_order_release);
      for (auto& w : workers) w.join();
    } else {
      // Final incarnation: drain the full quota, then terminate gracefully.
      // The daemon quiesces and runs the SERVER-side verifiers over its
      // histories (which begin with the recovery sweep's synthetic writes);
      // its exit code is the second half of the verdict.
      for (auto& w : workers) w.join();
      ::kill(pid, SIGTERM);
      ::waitpid(pid, &status, 0);
      rep.server_verified = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (!rep.server_verified) {
        rep.violation = "kill9: final incarnation exit status " +
                        std::to_string(status) +
                        " (server-side verification failed)";
      }
    }
    session.reset();
    if (opt.verbose) {
      std::fprintf(stderr,
                   "kill9: round %zu done (%s), %zu ops ticketed\n", round,
                   kill_round ? "SIGKILL" : "SIGTERM",
                   tickets.load(std::memory_order_acquire));
    }
  }

  rec.reconcile();
  const auto a = rec.h.check_atomicity(Bytes{});
  rep.atomicity_ok = a.ok;
  const auto f = verify_read_freshness(rec.h);
  rep.freshness_ok = f.ok;
  if (!a.ok) {
    rep.violation = "atomicity: " + a.violation;
  } else if (!f.ok) {
    rep.violation = "freshness: " + f.violation;
  }
  return rep;
}

std::string format_kill9_report(const Kill9Options& opt,
                                const Kill9Report& rep) {
  std::ostringstream os;
  os << "kill9: " << rep.incarnations << " incarnations, " << rep.kills
     << " SIGKILLs, data_dir=" << opt.data_dir << " sync="
     << storage::sync_policy_name(opt.sync) << "\n"
     << "kill9: writes " << rep.writes_completed << " completed, "
     << rep.writes_unknown << " unknown (" << rep.writes_bound
     << " bound by reads), " << rep.writes_coalesced << " coalesced; reads "
     << rep.reads_completed << " completed, " << rep.reads_failed
     << " failed\n"
     << "kill9: atomicity " << (rep.atomicity_ok ? "OK" : "VIOLATION")
     << ", freshness " << (rep.freshness_ok ? "OK" : "VIOLATION")
     << ", server self-check "
     << (rep.server_verified ? "OK" : "FAILED") << "\n";
  if (!rep.violation.empty()) os << "kill9: " << rep.violation << "\n";
  os << (rep.ok() ? "kill9: PASS" : "kill9: FAIL") << "\n";
  return os.str();
}

}  // namespace lds::harness
