#include "harness/workload.h"

#include <cmath>
#include <cstdio>
#include <numeric>

namespace lds::harness {

// ---- ValueSizeDist ----------------------------------------------------------

namespace {

/// Split "a:b:c" into fields; empty vector on empty input.
std::vector<std::string> split_colon(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t colon = s.find(':', start);
    if (colon == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, colon - start));
    start = colon + 1;
  }
  return out;
}

bool parse_size(const std::string& s, std::size_t* out) {
  if (s.empty()) return false;
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (...) {
    return false;
  }
  if (pos != s.size()) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_pct(const std::string& s, double* out) {
  if (s.empty()) return false;
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(s, &pos);
  } catch (...) {
    return false;
  }
  if (pos != s.size() || !(v >= 0.0 && v <= 100.0)) return false;
  *out = v;
  return true;
}

}  // namespace

std::optional<ValueSizeDist> ValueSizeDist::parse(const std::string& spec) {
  const auto f = split_colon(spec);
  ValueSizeDist d;
  if (f.size() == 2 && f[0] == "fixed") {
    d.kind = Kind::Fixed;
    if (!parse_size(f[1], &d.a)) return std::nullopt;
    d.b = d.a;
    return d;
  }
  if (f.size() == 3 && f[0] == "uniform") {
    d.kind = Kind::Uniform;
    if (!parse_size(f[1], &d.a) || !parse_size(f[2], &d.b) || d.a > d.b) {
      return std::nullopt;
    }
    return d;
  }
  if (f.size() == 4 && f[0] == "bimodal") {
    d.kind = Kind::Bimodal;
    if (!parse_size(f[1], &d.a) || !parse_size(f[2], &d.b) || d.a > d.b ||
        !parse_pct(f[3], &d.large_pct)) {
      return std::nullopt;
    }
    return d;
  }
  return std::nullopt;
}

std::size_t ValueSizeDist::sample(Rng& rng) const {
  switch (kind) {
    case Kind::Fixed: return a;
    case Kind::Uniform:
      return static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(a),
                          static_cast<std::int64_t>(b)));
    case Kind::Bimodal:
      return rng.bernoulli(large_pct / 100.0) ? b : a;
  }
  return a;
}

std::string ValueSizeDist::spec() const {
  switch (kind) {
    case Kind::Fixed: return "fixed:" + std::to_string(a);
    case Kind::Uniform:
      return "uniform:" + std::to_string(a) + ":" + std::to_string(b);
    case Kind::Bimodal: {
      char pct[32];
      std::snprintf(pct, sizeof(pct), "%g", large_pct);
      return "bimodal:" + std::to_string(a) + ":" + std::to_string(b) + ":" +
             pct;
    }
  }
  return "fixed:" + std::to_string(a);
}

// ---- ZipfianGenerator -------------------------------------------------------

namespace {

double zeta(std::size_t n, double theta) {
  double sum = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::size_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  threshold1_ = 1.0 + std::pow(0.5, theta_);
}

std::size_t ZipfianGenerator::next_rank(Rng& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (n_ >= 2 && uz < threshold1_) return 1;
  const auto rank = static_cast<std::size_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank < n_ ? rank : n_ - 1;
}

// ---- WorkloadModel ----------------------------------------------------------

std::optional<std::string> validate_workload(const WorkloadOptions& opt) {
  if (opt.keys == 0) return "workload: keys must be >= 1";
  if (!(opt.read_fraction >= 0.0 && opt.read_fraction <= 1.0)) {
    return "workload: read fraction must be in [0, 1]";
  }
  if (!(opt.zipf_theta >= 0.0 && opt.zipf_theta < 1.0)) {
    return "workload: --zipf-theta must be in [0, 1) (0 = uniform)";
  }
  if (opt.tenants == 0) return "workload: tenants must be >= 1";
  return std::nullopt;
}

WorkloadModel::WorkloadModel(WorkloadOptions opt) : opt_(opt) {
  perm_.resize(opt_.keys);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  if (opt_.zipf_theta > 0.0 && opt_.keys > 1) {
    zipf_.emplace(opt_.keys, opt_.zipf_theta);
    // Seeded Fisher-Yates: scatter popularity ranks over the key space so
    // hot keys are not simply the lowest-numbered ones, while keeping an
    // exact inverse for keys_coldest_first().
    Rng rng(mix_seed(opt_.seed, 0x5ca77e12));
    for (std::size_t i = opt_.keys - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(perm_[i], perm_[j]);
    }
  }
}

std::size_t WorkloadModel::key_index(Rng& rng) const {
  if (!zipf_.has_value()) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(opt_.keys) - 1));
  }
  return perm_[zipf_->next_rank(rng)];
}

std::string WorkloadModel::key_name(std::size_t tenant,
                                    std::size_t index) const {
  if (opt_.tenants > 1) {
    return "t" + std::to_string(tenant) + ":key-" + std::to_string(index);
  }
  return "key-" + std::to_string(index);
}

std::vector<std::size_t> WorkloadModel::keys_coldest_first() const {
  std::vector<std::size_t> order(opt_.keys);
  if (!zipf_.has_value()) {
    // Uniform popularity: no rank to invert, keep the identity order.
    for (std::size_t i = 0; i < opt_.keys; ++i) order[i] = i;
    return order;
  }
  for (std::size_t rank = 0; rank < opt_.keys; ++rank) {
    order[opt_.keys - 1 - rank] = perm_[rank];
  }
  return order;
}

}  // namespace lds::harness
