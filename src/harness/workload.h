// Workload model shared by lds_stress and lds_store_bench: which keys ops
// touch (uniform or Zipfian popularity), the read/write mix, how big values
// are (fixed / uniform / bimodal), and how clients map onto tenants.
//
// The model is a pure function of (options, the caller's Rng): it owns no
// Rng of its own, so per-chain / per-thread generators keep their existing
// determinism story — same seed, same op sequence, engine mode independent.
//
// Zipfian ranks come from the YCSB inverse-CDF generator (Gray et al.'s
// formula): rank 0 is the hottest key, rank n-1 the coldest.  Ranks are
// scattered over the key space through a seeded Fisher-Yates permutation —
// an exact bijection, so `keys_coldest_first()` can enumerate the key space
// in strict coldest-to-hottest order (the priming order that leaves
// hot-key cache warm-up to the measured run itself).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace lds::harness {

/// Value-size distribution: "fixed:N", "uniform:LO:HI" (inclusive), or
/// "bimodal:SMALL:LARGE:PCT" (PCT percent of values are LARGE bytes).
struct ValueSizeDist {
  enum class Kind : std::uint8_t { Fixed, Uniform, Bimodal };
  Kind kind = Kind::Fixed;
  std::size_t a = 64;       ///< fixed size / uniform lo / bimodal small
  std::size_t b = 64;       ///< uniform hi / bimodal large
  double large_pct = 10.0;  ///< bimodal: percent of LARGE values

  /// Parse the spec above; nullopt on malformed input.
  static std::optional<ValueSizeDist> parse(const std::string& spec);
  std::size_t sample(Rng& rng) const;
  /// Canonical spec string (for JSON/report labels).
  std::string spec() const;
  /// Largest size the distribution can produce.
  std::size_t max_size() const { return kind == Kind::Fixed ? a : b; }
};

/// YCSB-style Zipfian rank generator over [0, n).  theta in (0, 1); higher
/// = more skew (0.99 is the YCSB default).  Stateless draw: thread-safe as
/// long as each thread brings its own Rng.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::size_t n, double theta);
  std::size_t next_rank(Rng& rng) const;
  std::size_t n() const { return n_; }

 private:
  std::size_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double threshold1_;  ///< uz < 1 + 0.5^theta => rank 1
};

struct WorkloadOptions {
  std::size_t keys = 64;       ///< key-space size per tenant
  double read_fraction = 0.5;  ///< P(op is a read)
  /// 0 = uniform key popularity; in (0, 1) = Zipfian skew (0.99 = YCSB).
  double zipf_theta = 0.0;
  ValueSizeDist value_dist;
  std::size_t tenants = 1;  ///< disjoint key namespaces ("t<i>:" prefixes)
  /// Seeds the rank->key permutation only (op draws use the caller's Rng).
  std::uint64_t seed = 1;
};

/// Validate ranges; nullopt when fine, else a message for the CLI.
std::optional<std::string> validate_workload(const WorkloadOptions& opt);

class WorkloadModel {
 public:
  explicit WorkloadModel(WorkloadOptions opt);

  const WorkloadOptions& options() const { return opt_; }

  bool is_read(Rng& rng) const { return rng.bernoulli(opt_.read_fraction); }
  /// Key index in [0, keys): Zipfian rank scattered through the seeded
  /// permutation, or plain uniform when zipf_theta == 0.
  std::size_t key_index(Rng& rng) const;
  std::size_t value_size(Rng& rng) const {
    return opt_.value_dist.sample(rng);
  }

  /// Tenants partition clients round-robin and prefix their key space.
  std::size_t tenant_of_client(std::size_t client) const {
    return client % opt_.tenants;
  }
  std::string key_name(std::size_t tenant, std::size_t index) const;

  /// Every key index, coldest popularity rank first (hottest last): the
  /// priming order that does not pre-warm hot keys ahead of measurement.
  /// Uniform workloads get the identity order.
  std::vector<std::size_t> keys_coldest_first() const;

 private:
  WorkloadOptions opt_;
  std::optional<ZipfianGenerator> zipf_;
  std::vector<std::size_t> perm_;  ///< rank -> key index (bijection)
};

}  // namespace lds::harness
