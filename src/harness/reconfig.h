// Reconfiguration churn stress: the end-to-end proof of the member
// subsystem (multi-process quorums + epoch-based reconfiguration).
//
// The harness forks a real 3-process cluster — one `lds_served` head
// (StoreService + membership coordinator) and two member peers whose
// --node-ids claims pull L2 servers out of the head — then drives client
// load over TCP while churning the membership:
//
//   * join/leave/replace rounds: an L2 server is moved between the head and
//     a peer (member::Controller -> RemoteReconfig), each move activating a
//     new epoch with quiesce + state-sync, while writes and atomic reads
//     keep flowing;
//   * a SIGKILL mid-reconfig: a move is launched asynchronously, the peer
//     hosting the moving servers is SIGKILLed while it is in flight, and
//     the restarted peer re-joins (new epoch, re-synced from scratch).
//
// Every client-observed operation lands in one merged History spanning all
// epochs; at the end it must pass BOTH verifiers (History::check_atomicity
// and harness::verify_read_freshness), the head's own SIGTERM verification
// must exit 0, and the final epoch's view must be durably recoverable from
// the head's --member-dir.  That is the reconfiguration claim: atomicity
// holds ACROSS view changes, not just within one.
#pragma once

#include <cstdint>
#include <string>

namespace lds::harness {

struct ReconfigOptions {
  /// Path to the lds_served binary (required).
  std::string server_bin;
  /// Scratch directory for port files + the head's view dir (wiped).
  std::string work_dir;
  /// Blocking move rounds (head <-> peer) after the two joins.
  std::size_t moves = 4;
  /// Client operations ticketed per churn round.
  std::size_t ops_per_round = 300;
  std::size_t threads = 4;
  std::size_t keys = 16;
  std::size_t value_size = 64;
  double read_fraction = 0.5;
  /// SIGKILL a peer while an async move of its servers is in flight, then
  /// restart it (it re-joins and is re-synced).
  bool kill_mid_move = true;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct ReconfigReport {
  std::size_t peers_started = 0;  ///< peer processes spawned (incl. restart)
  std::size_t moves_applied = 0;  ///< controller moves that returned Ok
  std::size_t kills = 0;          ///< SIGKILLs delivered mid-reconfig
  std::uint64_t final_epoch = 0;      ///< highest epoch the controller saw
  std::uint64_t persisted_epoch = 0;  ///< epoch recovered from VIEW on disk
  std::size_t writes_completed = 0;
  std::size_t writes_unknown = 0;
  std::size_t writes_bound = 0;
  std::size_t writes_coalesced = 0;
  std::size_t reads_completed = 0;
  std::size_t reads_failed = 0;
  bool atomicity_ok = false;
  bool freshness_ok = false;
  bool server_verified = false;  ///< head exited 0 on SIGTERM
  bool peers_clean = false;      ///< surviving peers exited 0 on SIGTERM
  bool view_recovered = false;   ///< persisted_epoch >= final_epoch
  std::string violation;

  bool ok() const {
    return atomicity_ok && freshness_ok && server_verified && peers_clean &&
           view_recovered;
  }
};

/// Run the reconfiguration churn stress.  Spawns and reaps real child
/// processes; POSIX only.  Setup failures return a not-ok report with
/// `violation` set.
ReconfigReport run_reconfig(const ReconfigOptions& opt);

/// One human-readable summary block (the CLI output).
std::string format_reconfig_report(const ReconfigOptions& opt,
                                   const ReconfigReport& rep);

}  // namespace lds::harness
