// Kill-9 crash-recovery stress: the durability proof for storage::Wal +
// storage::Checkpoint.
//
// The harness forks a real `lds_served --data-dir <dir>` daemon, drives it
// over TCP from concurrent client threads, SIGKILLs it mid-churn, restarts
// it on the SAME data_dir, and repeats.  Client threads record every
// operation they observe — with wall-clock invocation/response times that
// span all server incarnations — into one merged History.  After the final
// (gracefully terminated) incarnation the merged history must pass BOTH
// linearizability checkers:
//
//   * History::check_atomicity   (Theorem IV.9 conditions), and
//   * harness::verify_read_freshness (the independent reference checker).
//
// This is the end-to-end claim of durable mode: an operation the CLIENT saw
// complete survives SIGKILL — a completed put's value is never lost, a
// completed get's tag is never rolled back — because durable acks only fire
// once the tag's offload is fdatasynced at an L2 quorum.
//
// Writes the server may or may not have applied (the connection died with
// the reply in flight) are recorded as INCOMPLETE ops.  Every written value
// is unique (thread, seq tattooed into the bytes), so a post-run
// reconciliation pass can bind each such write to the tag the server
// actually gave it iff some completed read returned its value — exactly the
// History::set_payload contract ("a read may legitimately return the value
// of a write that never completed").
#pragma once

#include <cstdint>
#include <string>

#include "storage/wal.h"

namespace lds::harness {

struct Kill9Options {
  /// Path to the lds_served binary (required).
  std::string server_bin;
  /// Durable data_dir, wiped at start unless `keep_data` (required).
  std::string data_dir;
  /// SIGKILL rounds; the run uses kills + 1 server incarnations, the last
  /// of which terminates gracefully (SIGTERM) and must exit 0 — the
  /// daemon's own shutdown verification over the server-side histories.
  std::size_t kills = 2;
  /// Client operations per incarnation (the kill lands mid-quota).
  std::size_t ops_per_round = 400;
  std::size_t threads = 4;
  std::size_t keys = 16;
  std::size_t value_size = 64;
  double read_fraction = 0.5;
  /// lds_served knobs.
  std::size_t shards = 2;
  storage::SyncPolicy sync = storage::SyncPolicy::Always;
  std::uint64_t seed = 1;
  /// Reuse an existing data_dir instead of wiping (continue a history).
  bool keep_data = false;
  bool verbose = false;
};

struct Kill9Report {
  std::size_t incarnations = 0;  ///< server processes actually started
  std::size_t kills = 0;         ///< SIGKILLs delivered
  std::size_t writes_completed = 0;
  std::size_t writes_unknown = 0;  ///< connection died with reply in flight
  std::size_t writes_bound = 0;    ///< unknowns bound to a tag by a read
  std::size_t writes_coalesced = 0;
  std::size_t reads_completed = 0;
  std::size_t reads_failed = 0;
  bool atomicity_ok = false;
  bool freshness_ok = false;
  bool server_verified = false;  ///< final incarnation exited 0 on SIGTERM
  std::string violation;         ///< first checker violation or setup error

  bool ok() const { return atomicity_ok && freshness_ok && server_verified; }
};

/// Run the kill-9 stress.  Spawns and reaps real child processes; POSIX
/// only.  Any setup failure (server won't start, port never appears)
/// returns a not-ok report with `violation` set.
Kill9Report run_kill9(const Kill9Options& opt);

/// One human-readable summary block (the CLI output).
std::string format_kill9_report(const Kill9Options& opt,
                                const Kill9Report& rep);

}  // namespace lds::harness
