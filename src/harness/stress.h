// db_stress-style concurrent stress harness for the LDS reproduction.
//
// RocksDB's db_stress drives a store from many OS threads (ThreadBody), each
// with its own ThreadState, coordinated through one SharedState, while a
// fault injector kills components and a verifier checks the database against
// an in-memory model.  This harness is the same shape adapted to a
// discrete-event world: each OS thread owns one *shard* — an independent
// simulated cluster (LDS, ABD or CAS) with its own Simulator, derived RNG
// stream and operation History — and inside the shard the configured
// writer/reader mix runs concurrently *in simulated time* while server
// crashes and repair churn are injected.  Shards never share mutable state,
// so a run is deterministic for a fixed --seed regardless of OS scheduling,
// and a failure reproduces from the per-shard seed alone.
//
// Every shard's history is checked two ways:
//   * History::check_atomicity — the paper's Theorem IV.9 conditions
//     (Lynch's sufficient condition instantiated with the tag order);
//   * verify_read_freshness — an independent O(ops^2) reference checker:
//     a read returns a tag no older than the max tag of any write that
//     completed before the read was invoked, and reads are mutually
//     monotone.  Disagreement between the two checkers is itself a bug.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lds/history.h"
#include "net/engine.h"

namespace lds::harness {

enum class Backend { Lds, Abd, Cas, Store };

const char* backend_name(Backend b);
std::optional<Backend> parse_backend(std::string_view name);

struct StressOptions {
  Backend backend = Backend::Lds;
  /// Execution engine (store backend only).  Deterministic: every OS thread
  /// runs one independent StoreService on its own simulated time base, and
  /// a run replays bit-identically from --seed.  Parallel: ONE StoreService
  /// whose shards spread over `threads` ParallelEngine lanes; clients drive
  /// it wall-clock closed-loop (no simulated think time), runs are not
  /// replayable, and correctness comes from the per-shard verifiers.
  net::EngineMode engine = net::EngineMode::Deterministic;
  /// OS threads; each runs one independent shard (Parallel store: engine
  /// lanes).
  std::size_t threads = 4;
  /// Total client operations across all shards.
  std::size_t ops = 2000;
  /// Clients per shard; ops within a shard run concurrently in sim time.
  std::size_t writers = 2;
  std::size_t readers = 2;
  std::size_t objects = 4;
  std::size_t value_size = 64;
  /// Fraction of a shard's ops that are reads.
  double read_fraction = 0.5;
  /// Key popularity skew: 0 = uniform, (0, 1) = YCSB Zipfian (0.99 = YCSB
  /// default).  Applies to every backend.
  double zipf_theta = 0.0;
  /// Value-size distribution spec ("fixed:N" / "uniform:LO:HI" /
  /// "bimodal:SMALL:LARGE:PCT"); empty = fixed at --value-size.
  std::string value_dist;
  /// Store backend only: clients partition round-robin over this many
  /// tenants, each with a disjoint "t<i>:"-prefixed key namespace.
  std::size_t tenants = 1;
  /// Store backend only: enable the client read cache (version-validated
  /// tag-only rounds) on the driving store::Client.
  bool client_cache = false;
  double cache_ttl = 0.0;  ///< seconds a validated entry stays hot (0 = off)
  std::size_t cache_capacity = 4096;
  /// Per-operation probability of injecting a server crash (bounded by the
  /// backend's failure budget: f1/f2 for LDS, f for ABD, (n-k)/2 for CAS).
  double crash_rate = 0.0;
  /// LDS only: probability that a crashed L2 server is replaced and
  /// regenerated under load (RepairManager-style churn).  A repaired server
  /// returns its failure-budget slot, so churny runs keep crashing.
  double repair_rate = 0.0;
  /// Heavy-tailed (exponential) message latencies; fixed delays otherwise.
  bool exponential_latency = true;
  /// LDS geometry (n1 = 2 f1 + k, n2 = 2 f2 + d).
  std::size_t n1 = 6, f1 = 1, n2 = 8, f2 = 2;
  /// ABD / CAS geometry; CAS uses k = n - 2 f.
  std::size_t n = 9, f = 2;
  /// Store backend only: every OS thread runs one StoreService with this
  /// many consistent-hash shards (each an independent LDS cluster on the
  /// thread's shared simulator), write batching over `batch_window` sim
  /// units (flushing early at `max_batch` queued puts), and background
  /// heartbeat-driven repair of crashed L2 servers.
  std::size_t store_shards = 4;
  double batch_window = 0.5;
  std::size_t max_batch = 32;
  double tau1 = 1.0, tau0 = 1.0, tau2 = 3.0;
  /// Master seed; 0 means "pick one from entropy" (the CLI always prints
  /// the effective seed so any run reproduces with --seed).
  std::uint64_t seed = 0;
  /// Print one line per shard as it finishes.
  bool verbose = false;
};

struct ShardReport {
  std::size_t shard = 0;
  std::uint64_t seed = 0;  ///< derived per-shard seed (reproduce solo runs)
  std::size_t writes = 0;
  std::size_t reads = 0;
  std::size_t crashes = 0;
  std::size_t repairs = 0;
  /// Store backend: dispatched write batches / puts absorbed by coalescing.
  std::size_t batches = 0;
  std::size_t coalesced = 0;
  /// Store backend with --client-cache: reads served from / missed by the
  /// client read cache (parallel engine reports these once, on shard 0).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::uint64_t sim_events = 0;
  bool liveness_ok = false;
  bool atomicity_ok = false;
  bool freshness_ok = false;
  std::string violation;  ///< first violation, empty when ok

  bool ok() const { return liveness_ok && atomicity_ok && freshness_ok; }
};

struct StressReport {
  std::uint64_t seed = 0;  ///< effective master seed
  std::vector<ShardReport> shards;

  std::size_t total_writes() const;
  std::size_t total_reads() const;
  std::size_t total_crashes() const;
  std::size_t total_repairs() const;
  std::size_t total_batches() const;
  std::size_t total_coalesced() const;
  std::size_t total_cache_hits() const;
  std::size_t total_cache_misses() const;
  std::size_t violations() const;
  bool ok() const { return violations() == 0 && !shards.empty(); }
};

/// Coordination block shared by all stress threads (db_stress SharedState):
/// the mutex-guarded per-shard report sink the driver aggregates from.
class SharedState {
 public:
  explicit SharedState(std::size_t num_shards) : reports_(num_shards) {}

  void report(ShardReport r);
  std::vector<ShardReport> take_reports() { return std::move(reports_); }

 private:
  std::mutex mu_;
  std::vector<ShardReport> reports_;
};

/// Check option sanity (positive counts, rates in [0,1], backend geometry
/// within the paper's constraints) without touching LDS_REQUIRE-aborting
/// constructors.  Returns an error message, or nullopt when runnable.
std::optional<std::string> validate_options(const StressOptions& opt);

/// Run the configured stress: spawns opt.threads OS threads, each driving
/// one shard to completion, and aggregates the per-shard verdicts.  Invalid
/// options yield an empty (not-ok) report; CLIs should call
/// validate_options first for the reason.
StressReport run_stress(const StressOptions& opt);

/// Independent linearizability reference check over a recorded history (per
/// object, completed ops): every read's tag is >= the max tag among writes
/// that completed before the read was invoked, reads that precede a write
/// never carry its tag, and reads are mutually monotone.
core::History::CheckResult verify_read_freshness(const core::History& h);

/// One human-readable report table (the CLI output).
std::string format_report(const StressOptions& opt, const StressReport& rep);

}  // namespace lds::harness
