#include "harness/stress.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "common/rng.h"
#include "harness/workload.h"
#include "lds/cluster.h"
#include "store/client.h"

namespace lds::harness {

using core::History;
using core::OpKind;
using core::OpRecord;

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Lds: return "lds";
    case Backend::Abd: return "abd";
    case Backend::Cas: return "cas";
    case Backend::Store: return "store";
  }
  return "?";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "lds") return Backend::Lds;
  if (name == "abd") return Backend::Abd;
  if (name == "cas") return Backend::Cas;
  if (name == "store") return Backend::Store;
  return std::nullopt;
}

// ---- SharedState -----------------------------------------------------------

void SharedState::report(ShardReport r) {
  std::lock_guard<std::mutex> lock(mu_);
  reports_.at(r.shard) = std::move(r);
}

// ---- independent freshness verifier ----------------------------------------

History::CheckResult verify_read_freshness(const History& h) {
  std::unordered_map<ObjectId, std::vector<OpRecord>> by_obj;
  for (const auto& op : h.ops()) {
    if (op.complete) by_obj[op.obj].push_back(op);
  }
  for (auto& [obj, ops] : by_obj) {
    for (const auto& r : ops) {
      if (r.kind != OpKind::Read) continue;
      Tag floor = kTag0;
      for (const auto& o : ops) {
        if (o.responded >= r.invoked) continue;  // not strictly before
        // Writes and prior reads both raise the freshness floor: atomicity
        // makes every completed operation's tag visible to later ops.
        floor = std::max(floor, o.tag);
      }
      if (r.tag < floor) {
        return {false, "stale read: op " + std::to_string(r.id) + " on obj " +
                           std::to_string(obj) + " returned tag " +
                           r.tag.to_string() + " < freshness floor " +
                           floor.to_string()};
      }
      for (const auto& w : ops) {
        if (w.kind == OpKind::Write && r.responded < w.invoked &&
            r.tag == w.tag) {
          return {false, "read " + std::to_string(r.id) +
                             " returned the tag of a write invoked after it"};
        }
      }
    }
  }
  return {true, {}};
}

// ---- per-shard execution ----------------------------------------------------

namespace {

/// Uniform closure over the three backends: issue an operation on a given
/// client index, or try to crash / repair a server.  The concrete cluster is
/// kept alive through `keepalive`.
struct ShardEnv {
  net::Simulator* sim = nullptr;
  /// One history per verification domain: a single cluster for lds/abd/cas,
  /// one per store shard for the store backend.
  std::vector<const History*> histories;
  std::function<void(std::size_t, ObjectId, Value, std::function<void()>)>
      write;
  std::function<void(std::size_t, ObjectId, std::function<void()>)> read;
  /// Injects one server crash if the failure budget allows; returns whether
  /// a crash was scheduled.
  std::function<bool(Rng&)> try_crash;
  std::size_t* repairs = nullptr;
  /// Store backend hooks: drain including background repair (instead of a
  /// plain run-to-empty, which a heartbeat loop never reaches; the argument
  /// tells the service when the closed loop has no ops left to issue),
  /// service-level liveness, and report enrichment (repairs, batches,
  /// coalescing).
  std::function<void(std::function<bool()>)> quiesce;
  std::function<std::size_t()> outstanding;
  std::function<void(ShardReport&)> fill_store_stats;
  std::shared_ptr<void> keepalive;
};

/// Crash/repair bookkeeping for one LDS shard.  A server occupies a failure
/// budget slot from the moment it is crashed until its replacement finishes
/// regenerating every object (under-repair servers answer with stale state,
/// so they must count against f2 like crashed ones).
struct LdsFaultState {
  std::vector<bool> l1_down;
  std::vector<bool> l2_busy;
  std::size_t l1_down_count = 0;
  std::size_t l2_busy_count = 0;
  std::size_t repairs_done = 0;
  /// Repair orchestration closures; stored here (capturing this object by
  /// raw pointer) so they can re-enter themselves without shared_ptr cycles.
  std::function<void(std::size_t)> repair_server;
  std::function<void(std::size_t, ObjectId)> repair_chain;
};

ShardEnv make_lds_env(const StressOptions& opt, std::uint64_t shard_seed) {
  core::LdsCluster::Options copt;
  copt.cfg.n1 = opt.n1;
  copt.cfg.f1 = opt.f1;
  copt.cfg.n2 = opt.n2;
  copt.cfg.f2 = opt.f2;
  copt.cfg.initial_value = Bytes{};
  copt.writers = opt.writers;
  copt.readers = opt.readers;
  copt.latency = opt.exponential_latency
                     ? core::LdsCluster::LatencyKind::Exponential
                     : core::LdsCluster::LatencyKind::Fixed;
  copt.tau1 = opt.tau1;
  copt.tau0 = opt.tau0;
  copt.tau2 = opt.tau2;
  copt.seed = mix_seed(shard_seed, 1);
  auto cluster = std::make_shared<core::LdsCluster>(copt);
  auto faults = std::make_shared<LdsFaultState>();
  faults->l1_down.assign(opt.n1, false);
  faults->l2_busy.assign(opt.n2, false);

  ShardEnv env;
  env.sim = &cluster->sim();
  env.histories.push_back(&cluster->history());
  env.repairs = &faults->repairs_done;
  env.write = [cluster](std::size_t w, ObjectId obj, Value v,
                        std::function<void()> done) {
    cluster->writer(w).write(obj, std::move(v),
                             [done = std::move(done)](Tag) { done(); });
  };
  env.read = [cluster](std::size_t r, ObjectId obj,
                       std::function<void()> done) {
    cluster->reader(r).read(
        obj, [done = std::move(done)](Tag, const Value&) { done(); });
  };

  // Repair churn: replace the crashed server, then regenerate each object in
  // sequence; the budget slot frees only once every object converged.  The
  // closures live in *faults and capture it raw, so no shared_ptr cycles.
  LdsFaultState* fp = faults.get();
  faults->repair_chain = [cluster, fp, opt](std::size_t victim, ObjectId obj) {
    if (obj >= opt.objects) {  // all objects regenerated: slot freed
      fp->l2_busy[victim] = false;
      --fp->l2_busy_count;
      ++fp->repairs_done;
      return;
    }
    cluster->l2(victim).repair_object(
        obj, [cluster, fp, victim, obj](std::optional<Tag> t) {
          if (t.has_value()) {
            fp->repair_chain(victim, obj + 1);
          } else {
            // All rounds raced with concurrent write-to-L2 traffic; retry
            // this object after a backoff.  The slot stays occupied.
            cluster->sim().after(
                5.0, [fp, victim, obj] { fp->repair_chain(victim, obj); });
          }
        });
  };
  faults->repair_server = [cluster, fp](std::size_t victim) {
    cluster->replace_l2(victim);
    fp->repair_chain(victim, 0);
  };

  env.try_crash = [cluster, faults, opt](Rng& rng) {
    const bool can_l1 = faults->l1_down_count < opt.f1;
    const bool can_l2 = faults->l2_busy_count < opt.f2;
    if (!can_l1 && !can_l2) return false;
    // Pick a layer with remaining budget, then a random healthy victim.
    const bool hit_l2 = can_l2 && (!can_l1 || rng.bernoulli(0.5));
    std::vector<std::size_t> healthy;
    if (hit_l2) {
      for (std::size_t i = 0; i < opt.n2; ++i)
        if (!faults->l2_busy[i]) healthy.push_back(i);
    } else {
      for (std::size_t i = 0; i < opt.n1; ++i)
        if (!faults->l1_down[i]) healthy.push_back(i);
    }
    if (healthy.empty()) return false;
    const std::size_t victim =
        healthy[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(healthy.size()) - 1))];
    const double delay = rng.exponential(1.0);
    const bool repair = hit_l2 && rng.bernoulli(opt.repair_rate);
    const double repair_delay = delay + 2.0 + rng.exponential(5.0);
    if (hit_l2) {
      faults->l2_busy[victim] = true;
      ++faults->l2_busy_count;
      cluster->sim().after(delay,
                           [cluster, victim] { cluster->crash_l2(victim); });
      if (repair) {
        LdsFaultState* f = faults.get();
        cluster->sim().after(repair_delay,
                             [f, victim] { f->repair_server(victim); });
      }
    } else {
      faults->l1_down[victim] = true;
      ++faults->l1_down_count;
      cluster->sim().after(delay,
                           [cluster, victim] { cluster->crash_l1(victim); });
    }
    return true;
  };
  env.keepalive = cluster;
  return env;
}

template <typename Cluster>
ShardEnv make_single_layer_env(std::shared_ptr<Cluster> cluster,
                               std::size_t n, std::size_t budget) {
  auto down = std::make_shared<std::vector<bool>>(n, false);
  auto down_count = std::make_shared<std::size_t>(0);

  ShardEnv env;
  env.sim = &cluster->sim();
  env.histories.push_back(&cluster->history());
  env.write = [cluster](std::size_t w, ObjectId obj, Value v,
                        std::function<void()> done) {
    cluster->writer(w).write(obj, std::move(v),
                             [done = std::move(done)](Tag) { done(); });
  };
  env.read = [cluster](std::size_t r, ObjectId obj,
                       std::function<void()> done) {
    cluster->reader(r).read(
        obj, [done = std::move(done)](Tag, const Value&) { done(); });
  };
  env.try_crash = [cluster, down, down_count, n, budget](Rng& rng) {
    if (*down_count >= budget) return false;
    std::vector<std::size_t> healthy;
    for (std::size_t i = 0; i < n; ++i)
      if (!(*down)[i]) healthy.push_back(i);
    if (healthy.empty()) return false;
    const std::size_t victim =
        healthy[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(healthy.size()) - 1))];
    (*down)[victim] = true;
    ++*down_count;
    cluster->sim().after(rng.exponential(1.0), [cluster, victim] {
      cluster->crash_server(victim);
    });
    return true;
  };
  env.keepalive = cluster;
  return env;
}

ShardEnv make_abd_env(const StressOptions& opt, std::uint64_t shard_seed) {
  baselines::AbdCluster::Options copt;
  copt.n = opt.n;
  copt.f = opt.f;
  copt.writers = opt.writers;
  copt.readers = opt.readers;
  copt.initial_value = Bytes{};
  copt.tau1 = opt.tau1;
  copt.seed = mix_seed(shard_seed, 1);
  copt.exponential_latency = opt.exponential_latency;
  auto cluster = std::make_shared<baselines::AbdCluster>(copt);
  return make_single_layer_env(std::move(cluster), opt.n, opt.f);
}

ShardEnv make_cas_env(const StressOptions& opt, std::uint64_t shard_seed) {
  baselines::CasCluster::Options copt;
  copt.n = opt.n;
  copt.k = opt.n - 2 * opt.f;  // f = (n - k) / 2
  copt.writers = opt.writers;
  copt.readers = opt.readers;
  copt.initial_value = Bytes{};
  copt.tau1 = opt.tau1;
  copt.seed = mix_seed(shard_seed, 1);
  copt.exponential_latency = opt.exponential_latency;
  auto cluster = std::make_shared<baselines::CasCluster>(copt);
  return make_single_layer_env(std::move(cluster), opt.n, opt.f);
}

/// Project the stress options onto the shared workload model.  The
/// permutation seed is the shard seed, so a solo replay of one shard keeps
/// its hot-key layout.  An unparseable --value-dist falls back to the fixed
/// --value-size (validate_options rejects it before we get here).
WorkloadOptions workload_options(const StressOptions& opt,
                                 std::uint64_t seed) {
  WorkloadOptions w;
  w.keys = opt.objects;
  w.read_fraction = opt.read_fraction;
  w.zipf_theta = opt.zipf_theta;
  if (!opt.value_dist.empty()) {
    if (const auto d = ValueSizeDist::parse(opt.value_dist); d.has_value()) {
      w.value_dist = *d;
    }
  } else {
    w.value_dist.kind = ValueSizeDist::Kind::Fixed;
    w.value_dist.a = w.value_dist.b = opt.value_size;
  }
  w.tenants = opt.tenants;
  w.seed = seed;
  return w;
}

store::CacheOptions cache_options(const StressOptions& opt) {
  store::CacheOptions c;
  c.enabled = opt.client_cache;
  c.ttl = opt.cache_ttl;
  c.capacity = opt.cache_capacity;
  return c;
}

store::StoreOptions make_store_options(const StressOptions& opt,
                                       std::uint64_t shard_seed) {
  store::StoreOptions sopt;
  sopt.shards = opt.store_shards;
  sopt.writers_per_shard = opt.writers;
  sopt.readers_per_shard = opt.readers;
  sopt.backend.n1 = opt.n1;
  sopt.backend.f1 = opt.f1;
  sopt.backend.n2 = opt.n2;
  sopt.backend.f2 = opt.f2;
  sopt.batch_window = opt.batch_window;
  sopt.max_batch = opt.max_batch;
  sopt.exponential_latency = opt.exponential_latency;
  sopt.tau1 = opt.tau1;
  sopt.tau0 = opt.tau0;
  sopt.tau2 = opt.tau2;
  sopt.seed = mix_seed(shard_seed, 1);
  sopt.enable_repair = true;
  // With exponential (heavy-tailed) heartbeat delays a tight timeout would
  // fire constantly on alive servers; false suspicions are budget-gated and
  // safe, but keep them the exception rather than the steady state.
  sopt.repair.suspect_after =
      2 * sopt.repair.heartbeat_period + 8 * opt.tau2;
  return sopt;
}

ShardEnv make_store_env(const StressOptions& opt, std::uint64_t shard_seed,
                        const WorkloadModel* model) {
  const store::StoreOptions sopt = make_store_options(opt, shard_seed);
  auto service = std::make_shared<store::StoreService>(sopt);
  // All client traffic goes through the unified store::Client facade; the
  // raw service stays for introspection (histories, metrics, injection).
  // The read cache, when enabled, lives in this client and validates with
  // tag-only rounds.  `model` maps (client, object) to the tenant-prefixed
  // key name; it outlives the env (owned by run_shard's frame).
  auto client = std::make_shared<store::Client>(*service, cache_options(opt));

  ShardEnv env;
  env.sim = &service->sim();
  for (std::size_t s = 0; s < service->num_shards(); ++s) {
    env.histories.push_back(&service->shard_history(s));
  }
  env.write = [client, model](std::size_t w, ObjectId obj, Value v,
                              std::function<void()> done) {
    client->put(model->key_name(model->tenant_of_client(w), obj),
                std::move(v),
                [done = std::move(done)](const store::PutResult&) { done(); });
  };
  env.read = [client, model](std::size_t r, ObjectId obj,
                             std::function<void()> done) {
    client->get(model->key_name(model->tenant_of_client(r), obj),
                [done = std::move(done)](const store::GetResult&) { done(); });
  };
  env.try_crash = [service, shards = opt.store_shards](Rng& rng) {
    // Random starting shard, then first shard with remaining budget.
    const std::size_t start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(shards) - 1));
    for (std::size_t i = 0; i < shards; ++i) {
      if (service->inject_crash((start + i) % shards, rng)) return true;
    }
    return false;
  };
  env.quiesce = [service](std::function<bool()> drained) {
    service->quiesce(std::move(drained));
  };
  env.outstanding = [service] { return service->outstanding(); };
  env.fill_store_stats = [service, client](ShardReport& rep) {
    rep.repairs = service->repair() != nullptr
                      ? service->repair()->servers_repaired()
                      : 0;
    rep.batches = service->metrics().counter_total("batches");
    rep.coalesced = service->metrics().counter_total("puts_coalesced");
    rep.cache_hits = client->metrics().counter_total("cache_hits");
    rep.cache_misses = client->metrics().counter_total("cache_misses");
  };
  struct Keep {
    std::shared_ptr<store::StoreService> service;
    std::shared_ptr<store::Client> client;
  };
  env.keepalive = std::make_shared<Keep>(Keep{service, client});
  return env;
}

/// db_stress ThreadState: everything one OS thread needs to run its shard.
struct ThreadState {
  std::size_t shard = 0;
  std::uint64_t seed = 0;  ///< per-shard derived seed
  StressOptions opt;
};

ShardReport run_shard(const ThreadState& ts) {
  const StressOptions& opt = ts.opt;
  ShardReport rep;
  rep.shard = ts.shard;
  rep.seed = ts.seed;
  auto rng = std::make_shared<Rng>(ts.seed);
  // Key popularity / value sizes / tenant naming; env closures hold a raw
  // pointer into this frame (they only run inside env.sim->run() below).
  const WorkloadModel model(workload_options(opt, ts.seed));

  ShardEnv env;
  switch (opt.backend) {
    case Backend::Lds: env = make_lds_env(opt, ts.seed); break;
    case Backend::Abd: env = make_abd_env(opt, ts.seed); break;
    case Backend::Cas: env = make_cas_env(opt, ts.seed); break;
    case Backend::Store: env = make_store_env(opt, ts.seed, &model); break;
  }

  // Split this shard's ops into per-client closed-loop budgets.
  const std::size_t shard_ops =
      opt.ops / opt.threads + (ts.shard < opt.ops % opt.threads ? 1 : 0);
  std::size_t reads = static_cast<std::size_t>(
      static_cast<double>(shard_ops) * opt.read_fraction + 0.5);
  reads = std::min(reads, shard_ops);
  const std::size_t writes = shard_ops - reads;
  auto writes_left = std::make_shared<std::vector<std::size_t>>(opt.writers,
                                                                std::size_t{0});
  auto reads_left = std::make_shared<std::vector<std::size_t>>(opt.readers,
                                                               std::size_t{0});
  for (std::size_t i = 0; i < writes; ++i) ++(*writes_left)[i % opt.writers];
  for (std::size_t i = 0; i < reads; ++i) ++(*reads_left)[i % opt.readers];

  // After each completion: roll the crash dice, think, and issue the
  // client's next op — the closed loop keeps clients well-formed while ops
  // from different clients overlap freely in simulated time.  All closures
  // run inside env.sim->run() below, so capturing the stack-local
  // std::functions by reference is safe (same idiom as tests/test_lds_stress).
  std::function<void()> on_done;
  std::function<void(std::size_t)> write_next;
  std::function<void(std::size_t)> read_next;

  on_done = [rng, &env, &rep, opt]() {
    if (opt.crash_rate > 0 && rng->bernoulli(opt.crash_rate)) {
      if (env.try_crash(*rng)) ++rep.crashes;
    }
  };

  write_next = [writes_left, rng, &env, &rep, &model, &on_done,
                &write_next](std::size_t w) {
    if ((*writes_left)[w] == 0) return;
    --(*writes_left)[w];
    const auto obj = static_cast<ObjectId>(model.key_index(*rng));
    ++rep.writes;
    env.write(w, obj, rng->bytes(model.value_size(*rng)),
              [&env, rng, &on_done, &write_next, w] {
                on_done();
                env.sim->after(rng->exponential(1.0) + 1e-6,
                               [&write_next, w] { write_next(w); });
              });
  };
  read_next = [reads_left, rng, &env, &rep, &model, &on_done,
               &read_next](std::size_t r) {
    if ((*reads_left)[r] == 0) return;
    --(*reads_left)[r];
    const auto obj = static_cast<ObjectId>(model.key_index(*rng));
    ++rep.reads;
    env.read(r, obj, [&env, rng, &on_done, &read_next, r] {
      on_done();
      env.sim->after(rng->exponential(1.0) + 1e-6,
                     [&read_next, r] { read_next(r); });
    });
  };

  for (std::size_t w = 0; w < opt.writers; ++w) {
    env.sim->at(rng->uniform_real(0.0, 3.0),
                [&write_next, w] { write_next(w); });
  }
  for (std::size_t r = 0; r < opt.readers; ++r) {
    env.sim->at(rng->uniform_real(0.0, 6.0),
                [&read_next, r] { read_next(r); });
  }

  // A plain run-to-empty suffices for single-cluster backends; the store's
  // background repair loop needs its own quiescence protocol, told when the
  // closed loop has exhausted every client's op budget.
  if (env.quiesce) {
    env.quiesce([writes_left, reads_left] {
      for (const auto n : *writes_left) {
        if (n != 0) return false;
      }
      for (const auto n : *reads_left) {
        if (n != 0) return false;
      }
      return true;
    });
  } else {
    env.sim->run();
  }
  rep.sim_events = env.sim->events_executed();
  if (env.repairs != nullptr) rep.repairs = *env.repairs;
  if (env.fill_store_stats) env.fill_store_stats(rep);

  // Verify every history (per store shard for the store backend): client
  // liveness, the paper's atomicity conditions, and the independent
  // freshness reference checker.
  rep.liveness_ok = true;
  rep.atomicity_ok = true;
  rep.freshness_ok = true;
  const bool multi = env.histories.size() > 1;
  for (std::size_t h = 0; h < env.histories.size(); ++h) {
    const History& history = *env.histories[h];
    const std::string where =
        multi ? " (store shard " + std::to_string(h) + ")" : "";
    if (!history.all_complete() && rep.liveness_ok) {
      rep.liveness_ok = false;
      rep.violation = "liveness: " + std::to_string(history.incomplete()) +
                      " ops never completed" + where;
    }
    const auto atomic_verdict = history.check_atomicity(Bytes{});
    if (!atomic_verdict.ok && rep.atomicity_ok) {
      rep.atomicity_ok = false;
      if (rep.violation.empty()) {
        rep.violation = "atomicity: " + atomic_verdict.violation + where;
      }
    }
    const auto fresh_verdict = verify_read_freshness(history);
    if (!fresh_verdict.ok && rep.freshness_ok) {
      rep.freshness_ok = false;
      if (rep.violation.empty()) {
        rep.violation = "freshness: " + fresh_verdict.violation + where;
      }
    }
  }
  if (env.outstanding && env.outstanding() != 0 && rep.liveness_ok) {
    rep.liveness_ok = false;
    rep.violation = "liveness: " + std::to_string(env.outstanding()) +
                    " store ops never called back";
  }
  return rep;
}

// ---- parallel-engine store stress -------------------------------------------

/// --engine=parallel, store backend: ONE StoreService whose shards spread
/// over `threads` ParallelEngine lanes, driven by writer/reader chains that
/// issue their next op from the previous op's completion callback.  A
/// chain's Rng and budget hop lanes with the callbacks, but every hop
/// synchronizes through the engine, so chain state needs no locks; chains
/// share only atomic gauges.  Reports one ShardReport per *store* shard
/// (the verification domain), with counts recovered from the metrics
/// registry.
StressReport run_parallel_store(const StressOptions& opt,
                                std::uint64_t master_seed) {
  StressReport out;
  out.seed = master_seed;
  store::StoreOptions sopt = make_store_options(opt, master_seed);
  sopt.engine_mode = net::EngineMode::Parallel;
  sopt.engine_threads = opt.threads;
  store::StoreService svc(sopt);
  store::Client client(svc, cache_options(opt));
  const WorkloadModel model(workload_options(opt, master_seed));

  struct Chain {
    Rng rng{1};
    std::size_t left = 0;  ///< chain-serialized; hops lanes with the chain
    bool reader = false;
    std::size_t tenant = 0;
  };
  std::size_t reads = static_cast<std::size_t>(
      static_cast<double>(opt.ops) * opt.read_fraction + 0.5);
  reads = std::min(reads, opt.ops);
  const std::size_t writes = opt.ops - reads;
  std::vector<std::unique_ptr<Chain>> chains;
  for (std::size_t w = 0; w < opt.writers; ++w) {
    auto c = std::make_unique<Chain>();
    c->rng = Rng(mix_seed(master_seed, 100 + w));
    c->left = writes / opt.writers + (w < writes % opt.writers ? 1 : 0);
    c->tenant = model.tenant_of_client(w);
    chains.push_back(std::move(c));
  }
  for (std::size_t r = 0; r < opt.readers; ++r) {
    auto c = std::make_unique<Chain>();
    c->rng = Rng(mix_seed(master_seed, 200 + r));
    c->left = reads / opt.readers + (r < reads % opt.readers ? 1 : 0);
    c->reader = true;
    c->tenant = model.tenant_of_client(r);
    chains.push_back(std::move(c));
  }
  std::atomic<std::size_t> to_issue{opt.ops};

  // The closures below run on engine lanes while this frame blocks in
  // quiesce(), so capturing stack locals by reference is safe (same idiom
  // as run_shard's sim-driven closures).
  std::function<void(Chain*)> issue = [&](Chain* c) {
    if (c->left == 0) return;
    --c->left;
    to_issue.fetch_sub(1, std::memory_order_acq_rel);
    const auto obj = static_cast<ObjectId>(model.key_index(c->rng));
    const std::string key = model.key_name(c->tenant, obj);
    auto done = [&, c] {
      if (opt.crash_rate > 0 && c->rng.bernoulli(opt.crash_rate)) {
        const auto shard = static_cast<std::size_t>(c->rng.uniform_int(
            0, static_cast<std::int64_t>(opt.store_shards) - 1));
        // Fire-and-forget: the injection runs on the victim shard's lane
        // (counted in the service's idle() gauge); blocking here would
        // stall a lane on another lane mid-callback.
        svc.inject_crash_async(shard, c->rng.next_u64());
      }
      issue(c);
    };
    if (c->reader) {
      client.get(key, [done](const store::GetResult&) { done(); });
    } else {
      client.put(key, c->rng.bytes(model.value_size(c->rng)),
                 [done](const store::PutResult&) { done(); });
    }
  };
  for (auto& c : chains) issue(c.get());
  svc.quiesce([&] { return to_issue.load(std::memory_order_acquire) == 0; });

  const auto snap = svc.metrics().snapshot();
  auto shard_counter = [&](std::size_t s, const char* name) -> std::uint64_t {
    const auto& m = snap.shards.at(s).counters;
    const auto it = m.find(name);
    return it == m.end() ? 0 : it->second;
  };
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    ShardReport rep;
    rep.shard = s;
    rep.seed = sopt.seed;
    rep.writes = shard_counter(s, "puts");
    rep.reads = shard_counter(s, "gets");
    rep.crashes = shard_counter(s, "crashes") +
                  shard_counter(s, "crashes_l1") +
                  shard_counter(s, "crashes_l2");
    rep.repairs = shard_counter(s, "repairs_completed");
    rep.batches = shard_counter(s, "batches");
    rep.coalesced = shard_counter(s, "puts_coalesced");
    // Engine-wide event total, reported once (lanes are shared by shards).
    rep.sim_events = s == 0 ? svc.engine().events_executed() : 0;
    // The client (and so the cache) spans shards; report its counters once.
    if (s == 0) {
      rep.cache_hits = client.metrics().counter_total("cache_hits");
      rep.cache_misses = client.metrics().counter_total("cache_misses");
    }

    const History& history = svc.shard_history(s);
    rep.liveness_ok = history.all_complete();
    if (!rep.liveness_ok) {
      rep.violation = "liveness: " + std::to_string(history.incomplete()) +
                      " ops never completed";
    }
    const auto atomic_verdict = history.check_atomicity(Bytes{});
    rep.atomicity_ok = atomic_verdict.ok;
    if (!atomic_verdict.ok && rep.violation.empty()) {
      rep.violation = "atomicity: " + atomic_verdict.violation;
    }
    const auto fresh_verdict = verify_read_freshness(history);
    rep.freshness_ok = fresh_verdict.ok;
    if (!fresh_verdict.ok && rep.violation.empty()) {
      rep.violation = "freshness: " + fresh_verdict.violation;
    }
    if (s == 0 && svc.outstanding() != 0) {
      rep.liveness_ok = false;
      rep.violation = "liveness: " + std::to_string(svc.outstanding()) +
                      " store ops never called back";
    }
    if (opt.verbose) {
      std::fprintf(stderr,
                   "[store shard %2zu] w=%zu r=%zu crashes=%zu repairs=%zu "
                   "%s%s%s\n",
                   rep.shard, rep.writes, rep.reads, rep.crashes, rep.repairs,
                   rep.ok() ? "OK" : "VIOLATION",
                   rep.violation.empty() ? "" : ": ",
                   rep.violation.c_str());
    }
    out.shards.push_back(std::move(rep));
  }
  return out;
}

}  // namespace

// ---- driver -----------------------------------------------------------------

std::size_t StressReport::total_writes() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.writes;
  return n;
}
std::size_t StressReport::total_reads() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.reads;
  return n;
}
std::size_t StressReport::total_crashes() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.crashes;
  return n;
}
std::size_t StressReport::total_repairs() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.repairs;
  return n;
}
std::size_t StressReport::total_batches() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.batches;
  return n;
}
std::size_t StressReport::total_coalesced() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.coalesced;
  return n;
}
std::size_t StressReport::total_cache_hits() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.cache_hits;
  return n;
}
std::size_t StressReport::total_cache_misses() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.cache_misses;
  return n;
}
std::size_t StressReport::violations() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s.ok() ? 0 : 1;
  return n;
}

std::optional<std::string> validate_options(const StressOptions& opt) {
  if (opt.threads == 0 || opt.threads > 1024)
    return "--threads must be in [1, 1024]";
  if (opt.writers == 0) return "--writers must be >= 1";
  if (opt.readers == 0) return "--readers must be >= 1";
  if (opt.objects == 0) return "--objects must be >= 1";
  // The negated >=/<= form also rejects NaN.
  if (!(opt.read_fraction >= 0.0 && opt.read_fraction <= 1.0))
    return "--read-fraction must be in [0, 1]";
  if (!(opt.crash_rate >= 0.0 && opt.crash_rate <= 1.0))
    return "--crash-rate must be in [0, 1]";
  if (!(opt.repair_rate >= 0.0 && opt.repair_rate <= 1.0))
    return "--repair-rate must be in [0, 1]";
  if (!(opt.zipf_theta >= 0.0 && opt.zipf_theta < 1.0))
    return "--zipf-theta must be in [0, 1) (0 = uniform)";
  if (!opt.value_dist.empty() &&
      !ValueSizeDist::parse(opt.value_dist).has_value())
    return "--value-dist must be fixed:N, uniform:LO:HI or "
           "bimodal:SMALL:LARGE:PCT";
  if (opt.tenants == 0) return "--tenants must be >= 1";
  if (opt.tenants > 1 && opt.backend != Backend::Store)
    return "--tenants > 1 requires --backend store (tenant key namespaces)";
  if (opt.client_cache && opt.backend != Backend::Store)
    return "--client-cache requires --backend store";
  if (opt.client_cache && opt.cache_capacity == 0)
    return "--cache-capacity must be >= 1";
  if (!(opt.cache_ttl >= 0.0)) return "--cache-ttl must be >= 0";
  if (opt.engine == net::EngineMode::Parallel && opt.backend != Backend::Store)
    return "--engine=parallel requires --backend store (single-cluster "
           "backends already scale one independent shard per OS thread)";
  if (opt.backend == Backend::Store) {
    if (opt.store_shards == 0 || opt.store_shards > 256)
      return "--shards must be in [1, 256]";
    if (!(opt.batch_window >= 0.0)) return "--batch-window must be >= 0";
    if (opt.max_batch == 0) return "--max-batch must be >= 1";
  }
  switch (opt.backend) {
    case Backend::Store:  // store shards are LDS clusters
    case Backend::Lds:
      // LdsConfig::validate()'s constraints, reported instead of aborted.
      if (opt.n1 < 1 || opt.n2 < 1) return "need n1 >= 1 and n2 >= 1";
      if (2 * opt.f1 >= opt.n1) return "need f1 < n1/2";
      if (3 * opt.f2 >= opt.n2) return "need f2 < n2/3";
      if (opt.n2 - 2 * opt.f2 < opt.n1 - 2 * opt.f1)
        return "need d = n2 - 2 f2 >= k = n1 - 2 f1 (MBR requires it)";
      if (opt.n1 + opt.n2 > 255) return "GF(256) bound: n1 + n2 <= 255";
      break;
    case Backend::Abd:
      if (opt.n < 1) return "need n >= 1";
      if (2 * opt.f >= opt.n) return "ABD tolerates f < n/2";
      break;
    case Backend::Cas:
      if (2 * opt.f >= opt.n || opt.n - 2 * opt.f < 1)
        return "CAS needs k = n - 2 f >= 1";
      if (opt.n > 255) return "GF(256) bound: n <= 255";
      break;
  }
  return std::nullopt;
}

StressReport run_stress(const StressOptions& opt) {
  StressReport out;
  out.seed = opt.seed != 0 ? opt.seed : entropy_seed();
  if (validate_options(opt).has_value()) {
    return out;  // empty => !ok()
  }
  if (opt.backend == Backend::Store &&
      opt.engine == net::EngineMode::Parallel) {
    return run_parallel_store(opt, out.seed);
  }

  SharedState shared(opt.threads);
  std::vector<std::thread> threads;
  threads.reserve(opt.threads);
  for (std::size_t t = 0; t < opt.threads; ++t) {
    ThreadState ts;
    ts.shard = t;
    // Single-thread runs use the master seed as the shard stream directly,
    // so "--threads 1 --ops <ops/threads> --seed <shard-seed>" replays one
    // shard of a multi-thread run bit-identically.
    ts.seed = opt.threads == 1 ? out.seed : mix_seed(out.seed, t);
    ts.opt = opt;
    threads.emplace_back([ts = std::move(ts), verbose = opt.verbose,
                          &shared] {
      ShardReport rep = run_shard(ts);
      if (verbose) {
        std::fprintf(stderr,
                     "[shard %2zu] seed=%llu w=%zu r=%zu crashes=%zu "
                     "repairs=%zu events=%llu %s%s%s\n",
                     rep.shard, static_cast<unsigned long long>(rep.seed),
                     rep.writes, rep.reads, rep.crashes, rep.repairs,
                     static_cast<unsigned long long>(rep.sim_events),
                     rep.ok() ? "OK" : "VIOLATION",
                     rep.violation.empty() ? "" : ": ",
                     rep.violation.c_str());
      }
      shared.report(std::move(rep));
    });
  }
  for (auto& th : threads) th.join();
  out.shards = shared.take_reports();
  return out;
}

std::string format_report(const StressOptions& opt, const StressReport& rep) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "lds_stress: backend=%s engine=%s threads=%zu ops=%zu "
                "seed=%llu\n",
                backend_name(opt.backend), net::engine_mode_name(opt.engine),
                opt.threads, opt.ops,
                static_cast<unsigned long long>(rep.seed));
  out += line;
  std::snprintf(line, sizeof(line),
                "%-6s %-20s %8s %8s %8s %8s %10s  %s\n", "shard", "seed",
                "writes", "reads", "crashes", "repairs", "events", "verdict");
  out += line;
  for (const auto& s : rep.shards) {
    std::snprintf(line, sizeof(line),
                  "%-6zu %-20llu %8zu %8zu %8zu %8zu %10llu  %s\n", s.shard,
                  static_cast<unsigned long long>(s.seed), s.writes, s.reads,
                  s.crashes, s.repairs,
                  static_cast<unsigned long long>(s.sim_events),
                  s.ok() ? "ok" : s.violation.c_str());
    out += line;
  }
  if (opt.backend == Backend::Store) {
    std::snprintf(line, sizeof(line),
                  "store: %zu shards/service, %zu write batches, "
                  "%zu puts coalesced\n",
                  opt.store_shards, rep.total_batches(),
                  rep.total_coalesced());
    out += line;
  }
  if (opt.zipf_theta > 0.0 || opt.tenants > 1 || !opt.value_dist.empty() ||
      opt.client_cache) {
    std::snprintf(line, sizeof(line),
                  "workload: zipf-theta=%g tenants=%zu value-dist=%s "
                  "cache=%s",
                  opt.zipf_theta, opt.tenants,
                  opt.value_dist.empty()
                      ? ("fixed:" + std::to_string(opt.value_size)).c_str()
                      : opt.value_dist.c_str(),
                  opt.client_cache ? "on" : "off");
    out += line;
    if (opt.client_cache) {
      std::snprintf(line, sizeof(line), " (%zu hits / %zu misses)",
                    rep.total_cache_hits(), rep.total_cache_misses());
      out += line;
    }
    out += '\n';
  }
  std::snprintf(line, sizeof(line),
                "total: %zu writes, %zu reads, %zu crashes, %zu repairs, "
                "%zu violation(s) -> %s\n",
                rep.total_writes(), rep.total_reads(), rep.total_crashes(),
                rep.total_repairs(), rep.violations(),
                rep.ok() ? "PASS" : "FAIL");
  out += line;
  return out;
}

}  // namespace lds::harness
