#include "harness/reconfig.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "harness/stress.h"
#include "lds/history.h"
#include "member/controller.h"
#include "member/view.h"
#include "storage/fsutil.h"
#include "store/remote.h"

namespace lds::harness {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-op wall-clock deadline.  Must comfortably cover a view change's
/// quiesce window (dispatch pauses for drain + activation, a few seconds
/// worst-case) — an op invoked just before the pause completes after resume.
constexpr double kOpDeadline = 10.0;

/// Moves block through propose + quiesce + activate + state-sync.
constexpr double kMoveDeadline = 60.0;

/// Shared recording state, identical in structure to the kill9 harness:
/// ops are recorded AFTER they return, under one mutex, with the real
/// invocation/response times — post-hoc recording preserves the real-time
/// precedence relation the checkers consume.
struct Recorder {
  std::mutex mu;
  core::History h;
  /// Unknown-outcome writes awaiting a tag: value bytes -> history index.
  std::map<Bytes, std::size_t> pending;
  ReconfigReport* rep;

  void read_done(OpId op, ObjectId obj, NodeId client, double t_inv,
                 double t_rsp, Tag tag, Value value) {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t idx =
        h.on_invoke(op, core::OpKind::Read, obj, client, t_inv);
    h.on_response(idx, t_rsp, tag, std::move(value));
    ++rep->reads_completed;
  }
  void write_done(OpId op, ObjectId obj, NodeId client, double t_inv,
                  double t_rsp, Tag tag, Value value) {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t idx =
        h.on_invoke(op, core::OpKind::Write, obj, client, t_inv);
    h.on_response(idx, t_rsp, tag, std::move(value));
    ++rep->writes_completed;
  }
  void write_unknown(OpId op, ObjectId obj, NodeId client, double t_inv,
                     Value value) {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t idx =
        h.on_invoke(op, core::OpKind::Write, obj, client, t_inv);
    pending.emplace(value.bytes(), idx);
    ++rep->writes_unknown;
  }

  /// Bind unknown-outcome writes observed by completed reads (see kill9.h
  /// for the full rationale; values are unique so value -> write is
  /// injective).
  void reconcile() {
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t n = h.ops().size();
    for (std::size_t i = 0; i < n; ++i) {
      const core::OpRecord& op = h.ops()[i];
      if (op.kind != core::OpKind::Read || !op.complete) continue;
      auto it = pending.find(op.value.bytes());
      if (it == pending.end()) continue;
      h.set_payload(it->second, op.tag, op.value);
      ++rep->writes_bound;
      pending.erase(it);
    }
  }
};

Value make_value(std::uint32_t thread, std::uint32_t seq, std::size_t size,
                 Rng& rng) {
  Bytes b = rng.bytes(size < 8 ? 8 : size);
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<std::uint8_t>(thread >> (8 * i));
    b[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return Value(std::move(b));
}

pid_t spawn(const std::vector<std::string>& args) {
  std::vector<std::string> copy = args;
  std::vector<char*> argv;
  argv.reserve(copy.size() + 1);
  for (auto& a : copy) argv.push_back(a.data());
  argv.push_back(nullptr);
  // Flush before fork: the child's freopen would otherwise re-emit any
  // buffered parent output into the shared stdout pipe.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure, -1)
  // Child: quiet stdout; stderr stays (verification failures must show).
  std::freopen("/dev/null", "w", stdout);
  ::execv(argv[0], argv.data());
  std::fprintf(stderr, "reconfig: execv %s: %s\n", argv[0],
               std::strerror(errno));
  ::_exit(127);
}

/// Poll for an (atomically published) port file; nullopt if the child exits
/// or the timeout lapses first.
std::optional<std::uint16_t> wait_for_port(const std::string& port_file,
                                           pid_t pid, double timeout_s,
                                           int* status) {
  const auto t0 = Clock::now();
  while (seconds_since(t0) < timeout_s) {
    if (::waitpid(pid, status, WNOHANG) == pid) return std::nullopt;
    Bytes b;
    if (storage::read_file_bytes(port_file, &b).ok() && !b.empty()) {
      const unsigned long p =
          std::strtoul(reinterpret_cast<const char*>(b.data()), nullptr, 10);
      if (p > 0 && p <= 65535) return static_cast<std::uint16_t>(p);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return std::nullopt;
}

struct Child {
  pid_t pid = -1;
  std::uint16_t member_port = 0;
};

/// Spawn one member peer and wait for its member port.
std::optional<Child> spawn_peer(const ReconfigOptions& opt,
                                std::uint16_t head_mport,
                                const std::string& node_ids,
                                const std::string& port_file,
                                std::uint64_t seed, std::string* err) {
  std::remove(port_file.c_str());
  const pid_t pid = spawn({
      opt.server_bin,
      "--join", "127.0.0.1:" + std::to_string(head_mport),
      "--node-ids", node_ids,
      "--member-port", "0",
      "--member-port-file", port_file,
      "--seed", std::to_string(seed),
  });
  if (pid < 0) {
    *err = "reconfig: fork (peer) failed";
    return std::nullopt;
  }
  int status = 0;
  const auto port = wait_for_port(port_file, pid, 30.0, &status);
  if (!port) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
    *err = "reconfig: peer claiming " + node_ids +
           " never published a member port";
    return std::nullopt;
  }
  return Child{pid, *port};
}

/// Poll the controller until the head's epoch reaches `want` (joins and
/// rejoins are applied asynchronously by the coordinator worker).
bool wait_epoch(member::Controller& ctl, std::uint64_t want, double timeout_s,
                std::uint64_t* out) {
  const auto t0 = Clock::now();
  while (seconds_since(t0) < timeout_s) {
    const auto e = ctl.epoch(5.0);
    if (e.ok()) {
      *out = e.value();
      if (e.value() >= want) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

}  // namespace

ReconfigReport run_reconfig(const ReconfigOptions& opt) {
  ReconfigReport rep;
  auto fail = [&rep](std::string why) {
    rep.violation = std::move(why);
    return rep;
  };
  if (opt.server_bin.empty() || opt.work_dir.empty()) {
    return fail("reconfig: --server-bin and --work-dir are required");
  }
  if (opt.threads == 0 || opt.keys == 0 || opt.ops_per_round == 0) {
    return fail("reconfig: threads, keys and ops-per-round must be positive");
  }
  if (auto st = storage::wipe_dir(opt.work_dir); !st.ok()) {
    return fail("reconfig: wipe " + opt.work_dir + ": " + st.message());
  }
  const std::string view_dir = opt.work_dir + "/view";

  // ---- spawn the head (store + coordinator) --------------------------------
  const std::string head_port_file = opt.work_dir + "/head-port";
  const std::string head_mport_file = opt.work_dir + "/head-mport";
  const pid_t head = spawn({
      opt.server_bin,
      "--port", "0",
      "--port-file", head_port_file,
      "--shards", "1",
      "--member-port", "0",
      "--member-port-file", head_mport_file,
      "--member-dir", view_dir,
      "--seed", std::to_string(opt.seed),
  });
  if (head < 0) return fail("reconfig: fork (head) failed");
  auto reap_head = [&](int sig) {
    int status = 0;
    ::kill(head, sig);
    ::waitpid(head, &status, 0);
    return status;
  };
  int status = 0;
  const auto head_port = wait_for_port(head_port_file, head, 30.0, &status);
  const auto head_mport =
      head_port ? wait_for_port(head_mport_file, head, 30.0, &status)
                : std::nullopt;
  if (!head_port || !head_mport) {
    reap_head(SIGKILL);
    return fail("reconfig: head never published its ports");
  }

  // ---- join two peers: L2 #6,#7 -> peer1 and #4,#5 -> peer2 ----------------
  // Default geometry n2=8, f2=2: each peer holds at most f2 L2 servers, so
  // one dead peer never exceeds the protocol's fault budget.
  std::string err;
  auto peer1 = spawn_peer(opt, *head_mport, "30006,30007",
                          opt.work_dir + "/p1-mport", opt.seed + 101, &err);
  if (!peer1) {
    reap_head(SIGKILL);
    return fail(std::move(err));
  }
  ++rep.peers_started;
  auto peer2 = spawn_peer(opt, *head_mport, "30004,30005",
                          opt.work_dir + "/p2-mport", opt.seed + 102, &err);
  if (!peer2) {
    ::kill(peer1->pid, SIGKILL);
    ::waitpid(peer1->pid, &status, 0);
    reap_head(SIGKILL);
    return fail(std::move(err));
  }
  ++rep.peers_started;

  auto cleanup_all = [&](std::string why) {
    ::kill(peer1->pid, SIGKILL);
    ::kill(peer2->pid, SIGKILL);
    ::waitpid(peer1->pid, &status, 0);
    ::waitpid(peer2->pid, &status, 0);
    reap_head(SIGKILL);
    return fail(std::move(why));
  };

  Status open_st;
  auto session = store::RemoteSession::open("127.0.0.1", *head_port, &open_st);
  auto ctl_session =
      session ? store::RemoteSession::open("127.0.0.1", *head_port, &open_st)
              : nullptr;
  if (ctl_session == nullptr) {
    return cleanup_all("reconfig: connect: " + open_st.to_string());
  }
  member::Controller ctl(*ctl_session);

  // Bootstrap = epoch 1; each join activates one more.
  if (!wait_epoch(ctl, 3, 30.0, &rep.final_epoch)) {
    return cleanup_all("reconfig: joins never activated (epoch " +
                       std::to_string(rep.final_epoch) + " < 3)");
  }

  // ---- concurrent client workload ------------------------------------------
  Recorder rec;
  rec.rep = &rep;
  const auto t0 = Clock::now();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops_done{0};
  std::atomic<std::uint32_t> seq{0};
  std::vector<std::thread> workers;
  workers.reserve(opt.threads);
  for (std::size_t t = 0; t < opt.threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(mix_seed(opt.seed, t + 1));
      const NodeId client = static_cast<NodeId>(100 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const auto key_idx = static_cast<ObjectId>(
            rng.uniform_int(0, static_cast<std::int64_t>(opt.keys) - 1));
        const std::string key = "key-" + std::to_string(key_idx);
        const std::uint32_t s = seq.fetch_add(1, std::memory_order_acq_rel);
        const OpId op = make_op_id(client, s);
        if (rng.bernoulli(opt.read_fraction)) {
          const double t_inv = seconds_since(t0);
          store::GetResult r =
              session->get(key, store::ReadMode::Atomic, kOpDeadline);
          const double t_rsp = seconds_since(t0);
          if (r.ok) {
            rec.read_done(op, key_idx, client, t_inv, t_rsp, r.tag,
                          std::move(r.value));
          } else if (r.status.code() == StatusCode::kNotFound) {
            rec.read_done(op, key_idx, client, t_inv, t_rsp, kTag0, Value());
          } else {
            std::lock_guard<std::mutex> lk(rec.mu);
            ++rep.reads_failed;
          }
        } else {
          Value v = make_value(static_cast<std::uint32_t>(t), s,
                               opt.value_size, rng);
          const double t_inv = seconds_since(t0);
          store::PutResult r = session->put(key, v, kOpDeadline);
          const double t_rsp = seconds_since(t0);
          if (r.ok && r.coalesced) {
            std::lock_guard<std::mutex> lk(rec.mu);
            ++rep.writes_coalesced;
          } else if (r.ok) {
            rec.write_done(op, key_idx, client, t_inv, t_rsp, r.tag,
                           std::move(v));
          } else if (r.status.code() == StatusCode::kAdmissionReject ||
                     r.status.code() == StatusCode::kInvalidArgument) {
            // Rejected before reaching a writer: definitely not applied.
          } else {
            rec.write_unknown(op, key_idx, client, t_inv, std::move(v));
          }
        }
        ops_done.fetch_add(1, std::memory_order_acq_rel);
        if (!session->connected()) break;
      }
    });
  }
  auto stop_workers = [&] {
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    workers.clear();
  };
  /// Let at least `n` more client ops finish under the current view.
  auto pace = [&](std::size_t n) {
    const std::uint64_t want = ops_done.load(std::memory_order_acquire) + n;
    const auto p0 = Clock::now();
    while (ops_done.load(std::memory_order_acquire) < want &&
           seconds_since(p0) < 60.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };

  // ---- churn: bounce L2 #3 between the head and peer1 ----------------------
  pace(opt.ops_per_round);
  for (std::size_t m = 0; m < opt.moves; ++m) {
    const bool out = m % 2 == 0;
    const auto r = out ? ctl.move_l2({3}, "127.0.0.1", peer1->member_port,
                                     kMoveDeadline)
                       : ctl.move_l2_home({3}, kMoveDeadline);
    if (!r.ok()) {
      stop_workers();
      return cleanup_all("reconfig: move " + std::to_string(m) + " (" +
                         (out ? "out" : "home") +
                         "): " + r.status().to_string());
    }
    rep.final_epoch = r.value();
    ++rep.moves_applied;
    if (opt.verbose) {
      std::fprintf(stderr, "reconfig: move %zu (%s) -> epoch %llu\n", m,
                   out ? "head->peer1" : "peer1->head",
                   static_cast<unsigned long long>(r.value()));
    }
    pace(opt.ops_per_round);
  }

  // ---- SIGKILL mid-reconfig ------------------------------------------------
  if (opt.kill_mid_move) {
    const std::uint64_t before = rep.final_epoch;
    std::mutex mmu;
    std::condition_variable mcv;
    bool mdone = false;
    // Pull L2 #5 home; peer2 (its current host) dies while the change is in
    // flight.  The coordinator's ack waits are bounded, so the move still
    // activates — a dead peer only costs timeouts, never liveness.
    ctl.async_move_l2({5}, "", 0,
                      [&](Status, std::uint64_t) {
                        std::lock_guard<std::mutex> lk(mmu);
                        mdone = true;
                        mcv.notify_one();
                      },
                      kMoveDeadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ::kill(peer2->pid, SIGKILL);
    ::waitpid(peer2->pid, &status, 0);
    ++rep.kills;
    {
      std::unique_lock<std::mutex> lk(mmu);
      if (!mcv.wait_for(lk, std::chrono::seconds(90),
                        [&] { return mdone; })) {
        stop_workers();
        ::kill(peer1->pid, SIGKILL);
        ::waitpid(peer1->pid, &status, 0);
        reap_head(SIGKILL);
        return fail("reconfig: move never completed after SIGKILL");
      }
    }
    pace(opt.ops_per_round / 2);
    // Restart peer2 on the same claims: it re-joins under a fresh epoch and
    // is re-synced from scratch (a rejoined process always starts empty).
    peer2 = spawn_peer(opt, *head_mport, "30004,30005",
                       opt.work_dir + "/p2-mport", opt.seed + 103, &err);
    if (!peer2) {
      stop_workers();
      ::kill(peer1->pid, SIGKILL);
      ::waitpid(peer1->pid, &status, 0);
      reap_head(SIGKILL);
      return fail(std::move(err));
    }
    ++rep.peers_started;
    if (!wait_epoch(ctl, before + 2, 60.0, &rep.final_epoch)) {
      stop_workers();
      return cleanup_all("reconfig: peer2 rejoin never activated (epoch " +
                         std::to_string(rep.final_epoch) + ")");
    }
    if (opt.verbose) {
      std::fprintf(stderr, "reconfig: SIGKILL + rejoin -> epoch %llu\n",
                   static_cast<unsigned long long>(rep.final_epoch));
    }
    pace(opt.ops_per_round);
  }

  // ---- shutdown + verdict --------------------------------------------------
  stop_workers();
  session.reset();
  ctl_session.reset();

  rep.peers_clean = true;
  for (const auto* p : {&*peer1, &*peer2}) {
    ::kill(p->pid, SIGTERM);
    ::waitpid(p->pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      rep.peers_clean = false;
    }
  }
  status = reap_head(SIGTERM);
  rep.server_verified = WIFEXITED(status) && WEXITSTATUS(status) == 0;

  // The acceptance bit for durability: the final epoch's view must be
  // recoverable from the head's member dir.
  if (auto loaded = member::View::load(view_dir);
      loaded.ok() && loaded.value().has_value()) {
    rep.persisted_epoch = loaded.value()->epoch;
    rep.view_recovered = rep.persisted_epoch >= rep.final_epoch;
  }

  rec.reconcile();
  const auto a = rec.h.check_atomicity(Bytes{});
  rep.atomicity_ok = a.ok;
  const auto f = verify_read_freshness(rec.h);
  rep.freshness_ok = f.ok;
  if (!a.ok) {
    rep.violation = "atomicity: " + a.violation;
  } else if (!f.ok) {
    rep.violation = "freshness: " + f.violation;
  } else if (!rep.server_verified) {
    rep.violation = "reconfig: head exit status " + std::to_string(status) +
                    " (server-side verification failed)";
  } else if (!rep.peers_clean) {
    rep.violation = "reconfig: a peer did not exit cleanly on SIGTERM";
  } else if (!rep.view_recovered) {
    rep.violation = "reconfig: persisted epoch " +
                    std::to_string(rep.persisted_epoch) +
                    " behind final epoch " + std::to_string(rep.final_epoch);
  }
  return rep;
}

std::string format_reconfig_report(const ReconfigOptions& opt,
                                   const ReconfigReport& rep) {
  std::ostringstream os;
  os << "reconfig: " << rep.peers_started << " peers started, "
     << rep.moves_applied << " moves applied, " << rep.kills
     << " SIGKILLs, final epoch " << rep.final_epoch << " (persisted "
     << rep.persisted_epoch << "), work_dir=" << opt.work_dir << "\n"
     << "reconfig: writes " << rep.writes_completed << " completed, "
     << rep.writes_unknown << " unknown (" << rep.writes_bound
     << " bound by reads), " << rep.writes_coalesced << " coalesced; reads "
     << rep.reads_completed << " completed, " << rep.reads_failed
     << " failed\n"
     << "reconfig: atomicity " << (rep.atomicity_ok ? "OK" : "VIOLATION")
     << ", freshness " << (rep.freshness_ok ? "OK" : "VIOLATION")
     << ", head self-check " << (rep.server_verified ? "OK" : "FAILED")
     << ", peers " << (rep.peers_clean ? "OK" : "FAILED") << ", view "
     << (rep.view_recovered ? "RECOVERED" : "LOST") << "\n";
  if (!rep.violation.empty()) os << "reconfig: " << rep.violation << "\n";
  os << (rep.ok() ? "reconfig: PASS" : "reconfig: FAIL") << "\n";
  return os.str();
}

}  // namespace lds::harness
