// Transport: how messages physically move between processes.
//
// Network (net/network.h) owns the *protocol-visible* semantics — reliable
// point-to-point links, cost accounting at send time, latency sampling — and
// delegates the actual movement of a message to a Transport:
//
//   * InProcTransport — the default and the only deterministic one: the
//     message stays a shared_ptr handle (zero serialization, zero copies)
//     and delivery is an event on the destination's lane simulator.  Runs
//     bit-identically for a fixed seed under both SimEngine and
//     ParallelEngine, exactly as before the seam existed.
//
//   * TcpTransport — the real-deployment path: every message is encoded to
//     its codec frame (net/codec.h) and moved over a TCP socket by one
//     poll(2)-based event-loop thread (listener + all connections + a wakeup
//     pipe).  Incoming byte streams are reassembled into frames, decoded,
//     and handed to a handler on the loop thread.  Not deterministic: the
//     kernel schedules delivery.  This is what lets a StoreService serve
//     remote store::Clients (store/remote.h, tools/lds_served.cpp).
//
// Determinism scope, explicitly: InProc yes (same seed => byte-identical
// histories, costs, metrics), TCP no (wall-clock and kernel interleaving).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/codec.h"
#include "net/sim.h"

namespace lds::net {

class Network;

/// The message-delivery seam of Network.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual const char* name() const = 0;
  /// True when delivery order is a pure function of the seed (InProc); real
  /// transports are not.
  virtual bool deterministic() const = 0;
  /// Move `msg` from `from` to `to`, becoming visible after `delay` —
  /// virtual time for deterministic transports; real transports ignore it
  /// (the kernel imposes its own latency).
  virtual void deliver(NodeId from, NodeId to, MessagePtr msg,
                       SimTime delay) = 0;
};

/// Default transport: the zero-copy in-process path.  Delivery is an event
/// on the owning Network's simulator, scheduled at send time (the paper's
/// reliable-iff-alive link model).
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(Network& net) : net_(net) {}
  const char* name() const override { return "inproc"; }
  bool deterministic() const override { return true; }
  void deliver(NodeId from, NodeId to, MessagePtr msg, SimTime delay) override;

 private:
  Network& net_;
};

/// Length-prefixed codec frames over real TCP sockets, one poll-based event
/// loop thread per transport instance.
///
/// Roles: after listen() the transport accepts connections and assigns each
/// an ascending peer id; after connect() it holds an outbound connection to
/// one peer.  One instance can do both (ids come from one counter).  Frames
/// are written zero-copy from the codec's {head, body} split (the value
/// buffer is never copied into a contiguous frame); incoming streams are
/// reassembled, bounds-checked against Options::max_frame_bytes, decoded,
/// and delivered to the registered handler ON THE LOOP THREAD — handlers
/// must be thread-safe against the rest of the application.
///
/// deliver()/close_peer() are thread-safe (any thread, any lane); a hostile
/// or corrupt peer is disconnected on its first malformed frame.
class TcpTransport final : public Transport {
 public:
  struct Options {
    /// Frames larger than this disconnect the peer (decode would reject
    /// them anyway; checking at reassembly avoids buffering the garbage).
    std::size_t max_frame_bytes = codec::kMaxFrameBytes;
    /// Poll timeout: the loop re-checks its stop flag at this cadence even
    /// when no fd is ready.
    int poll_interval_ms = 50;
    /// Outbound connect budget: connect() returns Unavailable when the
    /// handshake has not completed within this many milliseconds.  The
    /// socket is nonblocking before ::connect, so an unroutable or
    /// black-holed address costs at most this much (a blocking ::connect
    /// would sit in the kernel's own retry schedule for minutes).
    int connect_timeout_ms = 5000;
  };
  /// Called on the event-loop thread for every decoded incoming frame.
  using Handler = std::function<void(NodeId peer, MessagePtr msg)>;
  using DisconnectHandler = std::function<void(NodeId peer)>;

  TcpTransport() : TcpTransport(Options{}) {}
  explicit TcpTransport(Options opt);
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral, see port()) and start
  /// the event loop.  Accepted peers deliver their frames to `on_message`.
  Status listen(std::uint16_t port, Handler on_message);
  /// The bound listening port (after a successful listen()).
  std::uint16_t port() const { return port_; }

  /// Open an outbound connection; `*peer` receives the id to deliver() to.
  Status connect(const std::string& host, std::uint16_t port,
                 Handler on_message, NodeId* peer);

  /// Observe peer disconnects (loop thread).  Set before listen/connect.
  void set_disconnect_handler(DisconnectHandler h) {
    on_disconnect_ = std::move(h);
  }

  void close_peer(NodeId peer);
  /// Stop the loop, close every socket.  Idempotent; called by the dtor.
  void stop();

  const char* name() const override { return "tcp"; }
  bool deterministic() const override { return false; }
  /// Encode `msg` and queue it to peer `to` (`from` and `delay` are carried
  /// for interface symmetry; TCP imposes its own latency).  Unknown peers
  /// drop the message, mirroring Network's drop-at-delivery semantics.
  void deliver(NodeId from, NodeId to, MessagePtr msg, SimTime delay) override;

  std::uint64_t frames_sent() const { return frames_sent_.load(); }
  std::uint64_t frames_received() const { return frames_received_.load(); }
  std::uint64_t bytes_sent() const { return bytes_sent_.load(); }
  std::uint64_t bytes_received() const { return bytes_received_.load(); }
  std::uint64_t decode_errors() const { return decode_errors_.load(); }
  /// Outbound frames refused because they exceed Options::max_frame_bytes.
  std::uint64_t frames_dropped() const { return frames_dropped_.load(); }
  /// True once stop() ran (or is running), or after the event loop died on
  /// a poll failure; the transport cannot restart, and listen()/connect()
  /// report Unavailable instead of queueing work onto a dead loop.
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Make the event loop's next poll cycle fail as if poll(2) itself
  /// errored, exercising the abnormal-exit path (every connection fails
  /// through the disconnect handler, the transport marks itself stopped).
  void inject_poll_failure_for_testing();

 private:
  struct Conn {
    int fd = -1;
    Handler handler;
    Bytes inbuf;
    std::deque<codec::Frame> outq;  ///< front frame partially written
    std::size_t out_off = 0;        ///< bytes of the front frame written
  };

  void ensure_loop();     // start the loop thread once (under mu_)
  void loop();
  /// Abnormal loop exit: fail every connection through the disconnect
  /// handler and mark the transport stopped (loop thread only).
  void fail_loop();
  void wake();
  /// Close + erase under mu_; returns true when the peer existed.
  bool close_locked(NodeId peer);
  bool flush_conn(Conn& c);             // loop thread; false = conn broken
  bool read_conn(NodeId peer, Conn& c,  // loop thread; false = conn broken
                 std::vector<std::pair<Handler, MessagePtr>>* delivered);

  Options opt_;
  mutable std::mutex mu_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> inject_poll_failure_{false};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  Handler accept_handler_;
  DisconnectHandler on_disconnect_;
  NodeId next_peer_ = 1;
  std::unordered_map<NodeId, Conn> conns_;

  std::atomic<std::uint64_t> frames_sent_{0}, frames_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0}, bytes_received_{0};
  std::atomic<std::uint64_t> decode_errors_{0}, frames_dropped_{0};
};

}  // namespace lds::net
