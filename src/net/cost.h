// Communication-cost accounting.
//
// Section II-d of the paper: "The communication cost associated with a read
// or write operation is the (worst-case) size of the total data that gets
// transmitted in the messages sent as part of the operation. ... Costs
// contributed by meta-data (tags, counters, etc.) are ignored ... costs are
// normalized by the size of v."
//
// We therefore account *at send time* (not delivery), split every payload
// into data bytes vs meta bytes, and attribute bytes to the client operation
// whose OpId the message carries (internal write-to-L2 messages carry the
// originating write's OpId, matching the paper's convention that write cost
// includes the internal write-to-L2 cost).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "net/latency.h"

namespace lds::net {

struct CostBucket {
  std::uint64_t messages = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t meta_bytes = 0;

  void add(std::uint64_t data, std::uint64_t meta) {
    ++messages;
    data_bytes += data;
    meta_bytes += meta;
  }
  CostBucket& operator+=(const CostBucket& o) {
    messages += o.messages;
    data_bytes += o.data_bytes;
    meta_bytes += o.meta_bytes;
    return *this;
  }
};

class CostTracker {
 public:
  void record(LinkClass link, OpId op, std::uint64_t data_bytes,
              std::uint64_t meta_bytes);

  const CostBucket& total() const { return total_; }
  const CostBucket& by_link(LinkClass c) const {
    return by_link_[static_cast<std::size_t>(c)];
  }
  /// Bytes attributed to one operation (zero bucket if unknown).
  CostBucket by_op(OpId op) const;

  void reset();

 private:
  CostBucket total_;
  std::array<CostBucket, kNumLinkClasses> by_link_{};
  std::unordered_map<OpId, CostBucket> by_op_;
};

}  // namespace lds::net
