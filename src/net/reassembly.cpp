#include "net/reassembly.h"

#include <cstring>

#include "common/assert.h"

namespace lds::net {

FrameReassembler::FrameReassembler(BufferPool* pool, Options opt)
    : pool_(pool),
      own_pool_(pool != nullptr ? pool->block_bytes() : std::size_t{64} << 10,
                2),
      opt_(opt) {
  LDS_REQUIRE(opt_.max_frame_bytes >= codec::kFrameOverheadBytes,
              "FrameReassembler: max_frame_bytes below a frame header");
}

FrameReassembler::~FrameReassembler() {
  if (!buf_.empty()) {
    (pool_ != nullptr ? *pool_ : own_pool_).release(std::move(buf_));
  }
}

void FrameReassembler::ensure_block() {
  if (buf_.empty()) {
    buf_ = (pool_ != nullptr ? *pool_ : own_pool_).acquire();
    rd_ = wr_ = 0;
  }
}

void FrameReassembler::ensure_room(std::size_t need) {
  ensure_block();
  if (buf_.size() - rd_ >= need) return;
  if (rd_ > 0) {  // compact: slide the partial frame to the front
    std::memmove(buf_.data(), buf_.data() + rd_, wr_ - rd_);
    wr_ -= rd_;
    rd_ = 0;
  }
  if (buf_.size() < need) buf_.resize(need);  // jumbo in-block frame
}

std::pair<std::uint8_t*, std::size_t> FrameReassembler::recv_span() {
  if (phase_ == Phase::Payload) {
    return {payload_.data() + payload_wr_, payload_len_ - payload_wr_};
  }
  ensure_block();
  if (wr_ == buf_.size()) {
    // Block full behind a partial frame: compact, or grow for a frame
    // bigger than one block (drain() already vetted its declared size).
    ensure_room(buf_.size() - rd_ + 1);
  }
  return {buf_.data() + wr_, buf_.size() - wr_};
}

void FrameReassembler::commit(std::size_t n) {
  if (phase_ == Phase::Payload) {
    payload_wr_ += n;
    zero_copy_bytes_ += n;
    LDS_REQUIRE(payload_wr_ <= payload_len_,
                "FrameReassembler: payload overcommit");
    return;
  }
  wr_ += n;
  LDS_REQUIRE(wr_ <= buf_.size(), "FrameReassembler: block overcommit");
}

Status FrameReassembler::drain(std::vector<MessagePtr>* out) {
  while (true) {
    if (phase_ == Phase::Payload) {
      if (payload_wr_ < payload_len_) return Status::Ok();  // need more
      MessagePtr msg;
      Bytes payload = std::move(payload_);
      payload_ = Bytes{};
      if (Status s = codec::decode_with_payload(
              buf_.data() + rd_, head_len_, Value(std::move(payload)), &msg);
          !s.ok()) {
        return s;
      }
      out->push_back(std::move(msg));
      ++frames_;
      // The head was the only live region (everything past it moved into
      // the payload buffer when streaming began).
      rd_ = wr_ = 0;
      payload_len_ = payload_wr_ = head_len_ = 0;
      phase_ = Phase::Head;
      continue;
    }

    const std::size_t avail = wr_ - rd_;
    if (avail == 0) {
      rd_ = wr_ = 0;
      return Status::Ok();
    }
    std::size_t total = 0, payload = 0;
    if (Status s =
            codec::frame_layout(buf_.data() + rd_, avail, &total, &payload);
        !s.ok()) {
      return s;  // hostile prefix/header
    }
    if (total == 0) {  // header incomplete; make room for it and wait
      ensure_room(codec::kFrameOverheadBytes);
      return Status::Ok();
    }
    if (total > opt_.max_frame_bytes) {
      return Status::InvalidArgument(
          "frame of " + std::to_string(total) + " bytes exceeds limit of " +
          std::to_string(opt_.max_frame_bytes));
    }
    const std::size_t head = total - payload;
    // Large payload, not yet fully buffered: stream the rest of it straight
    // into its own exact-size buffer (zero-copy into the Value).  A frame
    // already complete in the block is decoded in place instead — copying
    // what we already have is cheaper than moving it twice.
    if (payload >= opt_.zero_copy_threshold && avail < total) {
      if (avail < head) {  // need the whole head contiguous first
        ensure_room(head);
        return Status::Ok();
      }
      payload_.resize(payload);
      const std::size_t surplus = avail - head;  // payload bytes in-block
      std::memcpy(payload_.data(), buf_.data() + rd_ + head, surplus);
      payload_len_ = payload;
      payload_wr_ = surplus;
      head_len_ = head;
      wr_ = rd_ + head;  // the head is now the only live block region
      phase_ = Phase::Payload;
      continue;
    }
    if (avail < total) {  // small frame, incomplete: buffer it whole
      ensure_room(total);
      return Status::Ok();
    }
    MessagePtr msg;
    if (Status s = codec::decode(buf_.data() + rd_, total, &msg); !s.ok()) {
      return s;
    }
    out->push_back(std::move(msg));
    ++frames_;
    rd_ += total;
  }
}

}  // namespace lds::net
