// Protocol tracing: a bounded, queryable record of message deliveries.
//
// Attaches to a Network through the delivery-observer hook and keeps the
// last `capacity` deliveries as structured entries (time, endpoints, type,
// sizes).  Used by debugging sessions, the CLI driver (--trace) and tests
// that assert on protocol-level behaviour (e.g. "no WRITE-CODE-ELEM before
// the commit quorum").  Formatting is human-readable one-line-per-event.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/network.h"

namespace lds::net {

struct TraceEntry {
  SimTime time = 0;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::string type;
  OpId op = kNoOp;
  std::uint64_t data_bytes = 0;
  std::uint64_t meta_bytes = 0;
};

class Trace {
 public:
  /// Attach to `net` (replaces any previously set delivery observer).
  /// The trace must outlive the network or be detach()ed first.
  Trace(Network& net, std::size_t capacity = 4096);
  ~Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Stop observing (idempotent).
  void detach();

  /// Filter by message type name; empty = record everything.
  void set_type_filter(std::vector<std::string> types);

  const std::deque<TraceEntry>& entries() const { return entries_; }
  std::size_t total_recorded() const { return total_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

  /// Entries of one message type, oldest first.
  std::vector<TraceEntry> by_type(const std::string& type) const;

  /// Count of recorded entries of one type.
  std::size_t count(const std::string& type) const;

  /// One line per entry: "[   12.000] s20001 -> r10000  DATA-RESP-VALUE
  /// op=... 120B+32B".
  std::string format() const;
  static std::string format_entry(const TraceEntry& e);

 private:
  void record(NodeId from, NodeId to, const Payload& payload);

  Network* net_;
  std::size_t capacity_;
  std::vector<std::string> filter_;
  std::deque<TraceEntry> entries_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace lds::net
