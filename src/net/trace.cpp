#include "net/trace.h"

#include <algorithm>
#include <cstdio>

namespace lds::net {

Trace::Trace(Network& net, std::size_t capacity)
    : net_(&net), capacity_(capacity) {
  LDS_REQUIRE(capacity > 0, "Trace: capacity must be positive");
  net_->set_delivery_observer(
      [this](NodeId from, NodeId to, const Payload& p) {
        record(from, to, p);
      });
}

Trace::~Trace() { detach(); }

void Trace::detach() {
  if (net_ != nullptr) {
    net_->set_delivery_observer(nullptr);
    net_ = nullptr;
  }
}

void Trace::set_type_filter(std::vector<std::string> types) {
  filter_ = std::move(types);
}

void Trace::clear() {
  entries_.clear();
  total_ = 0;
  dropped_ = 0;
}

void Trace::record(NodeId from, NodeId to, const Payload& payload) {
  const char* type = payload.type_name();
  if (!filter_.empty() &&
      std::find(filter_.begin(), filter_.end(), type) == filter_.end()) {
    return;
  }
  ++total_;
  if (entries_.size() == capacity_) {
    entries_.pop_front();
    ++dropped_;
  }
  TraceEntry e;
  e.time = net_->sim().now();
  e.from = from;
  e.to = to;
  e.type = type;
  e.op = payload.op();
  e.data_bytes = payload.data_bytes();
  e.meta_bytes = payload.meta_bytes();
  entries_.push_back(std::move(e));
}

std::vector<TraceEntry> Trace::by_type(const std::string& type) const {
  std::vector<TraceEntry> out;
  for (const auto& e : entries_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::size_t Trace::count(const std::string& type) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [&](const TraceEntry& e) { return e.type == type; }));
}

std::string Trace::format_entry(const TraceEntry& e) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "[%12.3f] %6d -> %-6d %-20s op=%08llx:%-6u %6lluB+%lluB",
                e.time, e.from, e.to, e.type.c_str(),
                static_cast<unsigned long long>(op_client(e.op)),
                op_seq(e.op), static_cast<unsigned long long>(e.data_bytes),
                static_cast<unsigned long long>(e.meta_bytes));
  return buf;
}

std::string Trace::format() const {
  std::string out;
  out.reserve(entries_.size() * 80);
  for (const auto& e : entries_) {
    out += format_entry(e);
    out += '\n';
  }
  if (dropped_ > 0) {
    out += "(" + std::to_string(dropped_) + " older entries dropped)\n";
  }
  return out;
}

}  // namespace lds::net
