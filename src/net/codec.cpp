#include "net/codec.h"

#include <atomic>

#include "baselines/abd.h"
#include "baselines/cas.h"
#include "common/assert.h"
#include "lds/heartbeat.h"
#include "lds/messages.h"

namespace lds::net::codec {

namespace {

// overloaded{} and truncated_frame() live in codec.h, shared with every
// registered family codec (store/remote.cpp registers one too).
Status truncated(const std::string& what) { return truncated_frame(what); }

Status unknown_type(const char* family, std::uint8_t type) {
  return Status::InvalidArgument(std::string("unknown ") + family +
                                 " type id " + std::to_string(type));
}

/// Frames whose trailing payload is a shared Value stay zero-copy: the
/// encoder records the handle in WireInfo instead of appending bytes.
void set_body(WireInfo* info, const Value& v) {
  info->has_body = true;
  info->body = v;
}

// ---- Family::Lds -------------------------------------------------------------

// Type ids are the LdsBody variant indices — the variant order in
// lds/messages.h is frozen by the wire format (see the codec.h header note).
class LdsCodec final : public FamilyCodec {
 public:
  const char* name() const override { return "lds"; }

  bool encode_body(const Payload& msg, Writer& w,
                   WireInfo* info) const override {
    const auto* m = dynamic_cast<const core::LdsMessage*>(&msg);
    if (m == nullptr) return false;
    info->type = static_cast<std::uint8_t>(m->body().index());
    info->obj = m->obj();
    info->op = m->op();
    using namespace lds::core;
    std::visit(
        overloaded{
            [&](const QueryTag&) {},
            [&](const TagResp& b) { w.tag(b.tag); },
            [&](const PutData& b) {
              w.tag(b.tag);
              set_body(info, b.value);
            },
            [&](const WriteAck& b) { w.tag(b.tag); },
            [&](const QueryCommTag&) {},
            [&](const CommTagResp& b) { w.tag(b.tag); },
            [&](const QueryData& b) { w.tag(b.treq); },
            [&](const DataRespValue& b) {
              w.tag(b.tag);
              set_body(info, b.value);
            },
            [&](const DataRespCoded& b) {
              w.tag(b.tag);
              w.i32(b.code_index);
              w.blob(b.element);
            },
            [&](const DataRespNack&) {},
            [&](const PutTag& b) { w.tag(b.tag); },
            [&](const PutTagAck&) {},
            [&](const UnregisterReader&) {},
            [&](const CommitTag& b) {
              w.tag(b.tag);
              w.u64(b.bcast_id);
            },
            [&](const WriteCodeElem& b) {
              w.tag(b.tag);
              w.blob(b.element);
            },
            [&](const AckCodeElem& b) { w.tag(b.tag); },
            [&](const QueryCodeElem& b) { w.i32(b.target_index); },
            [&](const SendHelperElem& b) {
              w.tag(b.tag);
              w.blob(b.helper);
            },
        },
        m->body());
    return true;
  }

  bool size_of(const Payload& msg, std::uint64_t* size) const override {
    const auto* m = dynamic_cast<const core::LdsMessage*>(&msg);
    if (m == nullptr) return false;
    using namespace lds::core;
    constexpr std::uint64_t kBase = kFrameOverheadBytes;
    constexpr std::uint64_t kTag = kTagWireBytes;
    *size = std::visit(
        overloaded{
            [](const QueryTag&) -> std::uint64_t { return kBase; },
            [](const TagResp&) -> std::uint64_t { return kBase + kTag; },
            [](const PutData& b) -> std::uint64_t {
              return kBase + kTag + b.value.size();
            },
            [](const WriteAck&) -> std::uint64_t { return kBase + kTag; },
            [](const QueryCommTag&) -> std::uint64_t { return kBase; },
            [](const CommTagResp&) -> std::uint64_t { return kBase + kTag; },
            [](const QueryData&) -> std::uint64_t { return kBase + kTag; },
            [](const DataRespValue& b) -> std::uint64_t {
              return kBase + kTag + b.value.size();
            },
            [](const DataRespCoded& b) -> std::uint64_t {
              return kBase + kTag + 4 + 4 + b.element.size();
            },
            [](const DataRespNack&) -> std::uint64_t { return kBase; },
            [](const PutTag&) -> std::uint64_t { return kBase + kTag; },
            [](const PutTagAck&) -> std::uint64_t { return kBase; },
            [](const UnregisterReader&) -> std::uint64_t { return kBase; },
            [](const CommitTag&) -> std::uint64_t { return kBase + kTag + 8; },
            [](const WriteCodeElem& b) -> std::uint64_t {
              return kBase + kTag + 4 + b.element.size();
            },
            [](const AckCodeElem&) -> std::uint64_t { return kBase + kTag; },
            [](const QueryCodeElem&) -> std::uint64_t { return kBase + 4; },
            [](const SendHelperElem& b) -> std::uint64_t {
              return kBase + kTag + 4 + b.helper.size();
            },
        },
        m->body());
    return true;
  }

  Status decode_body(std::uint8_t type, ObjectId obj, OpId op, Reader& r,
                     MessagePtr* out) const override {
    using namespace lds::core;
    LdsBody body;
    switch (type) {
      case 0:
        body = QueryTag{};
        break;
      case 1: {
        TagResp b;
        if (!r.tag(&b.tag)) return truncated("TagResp.tag");
        body = b;
        break;
      }
      case 2: {
        PutData b;
        if (!r.tag(&b.tag)) return truncated("PutData.tag");
        if (!r.value(&b.value)) return truncated("PutData.value");
        body = std::move(b);
        break;
      }
      case 3: {
        WriteAck b;
        if (!r.tag(&b.tag)) return truncated("WriteAck.tag");
        body = b;
        break;
      }
      case 4:
        body = QueryCommTag{};
        break;
      case 5: {
        CommTagResp b;
        if (!r.tag(&b.tag)) return truncated("CommTagResp.tag");
        body = b;
        break;
      }
      case 6: {
        QueryData b;
        if (!r.tag(&b.treq)) return truncated("QueryData.treq");
        body = b;
        break;
      }
      case 7: {
        DataRespValue b;
        if (!r.tag(&b.tag)) return truncated("DataRespValue.tag");
        if (!r.value(&b.value)) return truncated("DataRespValue.value");
        body = std::move(b);
        break;
      }
      case 8: {
        DataRespCoded b;
        if (!r.tag(&b.tag) || !r.i32(&b.code_index))
          return truncated("DataRespCoded header");
        if (!r.blob(&b.element)) return truncated("DataRespCoded.element");
        body = std::move(b);
        break;
      }
      case 9:
        body = DataRespNack{};
        break;
      case 10: {
        PutTag b;
        if (!r.tag(&b.tag)) return truncated("PutTag.tag");
        body = b;
        break;
      }
      case 11:
        body = PutTagAck{};
        break;
      case 12:
        body = UnregisterReader{};
        break;
      case 13: {
        CommitTag b;
        if (!r.tag(&b.tag) || !r.u64(&b.bcast_id))
          return truncated("CommitTag");
        body = b;
        break;
      }
      case 14: {
        WriteCodeElem b;
        if (!r.tag(&b.tag)) return truncated("WriteCodeElem.tag");
        if (!r.blob(&b.element)) return truncated("WriteCodeElem.element");
        body = std::move(b);
        break;
      }
      case 15: {
        AckCodeElem b;
        if (!r.tag(&b.tag)) return truncated("AckCodeElem.tag");
        body = b;
        break;
      }
      case 16: {
        QueryCodeElem b;
        if (!r.i32(&b.target_index)) return truncated("QueryCodeElem");
        body = b;
        break;
      }
      case 17: {
        SendHelperElem b;
        if (!r.tag(&b.tag)) return truncated("SendHelperElem.tag");
        if (!r.blob(&b.helper)) return truncated("SendHelperElem.helper");
        body = std::move(b);
        break;
      }
      default:
        return unknown_type("lds", type);
    }
    *out = core::LdsMessage::make(obj, op, std::move(body));
    return Status::Ok();
  }
};

// ---- Family::Abd -------------------------------------------------------------

class AbdCodec final : public FamilyCodec {
 public:
  const char* name() const override { return "abd"; }

  bool encode_body(const Payload& msg, Writer& w,
                   WireInfo* info) const override {
    const auto* m = dynamic_cast<const baselines::AbdMessage*>(&msg);
    if (m == nullptr) return false;
    info->type = static_cast<std::uint8_t>(m->body().index());
    info->obj = m->obj();
    info->op = m->op();
    using namespace lds::baselines;
    std::visit(
        overloaded{
            [&](const AbdQuery& b) { w.u8(b.want_value ? 1 : 0); },
            [&](const AbdQueryResp& b) {
              w.tag(b.tag);
              set_body(info, b.value);
            },
            [&](const AbdUpdate& b) {
              w.tag(b.tag);
              set_body(info, b.value);
            },
            [&](const AbdUpdateAck& b) { w.tag(b.tag); },
        },
        m->body());
    return true;
  }

  bool size_of(const Payload& msg, std::uint64_t* size) const override {
    const auto* m = dynamic_cast<const baselines::AbdMessage*>(&msg);
    if (m == nullptr) return false;
    using namespace lds::baselines;
    constexpr std::uint64_t kBase = kFrameOverheadBytes;
    constexpr std::uint64_t kTag = kTagWireBytes;
    *size = std::visit(
        overloaded{
            [](const AbdQuery&) -> std::uint64_t { return kBase + 1; },
            [](const AbdQueryResp& b) -> std::uint64_t {
              return kBase + kTag + b.value.size();
            },
            [](const AbdUpdate& b) -> std::uint64_t {
              return kBase + kTag + b.value.size();
            },
            [](const AbdUpdateAck&) -> std::uint64_t { return kBase + kTag; },
        },
        m->body());
    return true;
  }

  Status decode_body(std::uint8_t type, ObjectId obj, OpId op, Reader& r,
                     MessagePtr* out) const override {
    using namespace lds::baselines;
    AbdBody body;
    switch (type) {
      case 0: {
        AbdQuery b;
        std::uint8_t want = 0;
        if (!r.u8(&want)) return truncated("AbdQuery.want_value");
        b.want_value = want != 0;
        body = b;
        break;
      }
      case 1: {
        AbdQueryResp b;
        if (!r.tag(&b.tag)) return truncated("AbdQueryResp.tag");
        if (!r.value(&b.value)) return truncated("AbdQueryResp.value");
        body = std::move(b);
        break;
      }
      case 2: {
        AbdUpdate b;
        if (!r.tag(&b.tag)) return truncated("AbdUpdate.tag");
        if (!r.value(&b.value)) return truncated("AbdUpdate.value");
        body = std::move(b);
        break;
      }
      case 3: {
        AbdUpdateAck b;
        if (!r.tag(&b.tag)) return truncated("AbdUpdateAck.tag");
        body = b;
        break;
      }
      default:
        return unknown_type("abd", type);
    }
    *out = baselines::AbdMessage::make(obj, op, std::move(body));
    return Status::Ok();
  }
};

// ---- Family::Cas -------------------------------------------------------------

class CasCodec final : public FamilyCodec {
 public:
  const char* name() const override { return "cas"; }

  bool encode_body(const Payload& msg, Writer& w,
                   WireInfo* info) const override {
    const auto* m = dynamic_cast<const baselines::CasMessage*>(&msg);
    if (m == nullptr) return false;
    info->type = static_cast<std::uint8_t>(m->body().index());
    info->obj = m->obj();
    info->op = m->op();
    using namespace lds::baselines;
    std::visit(
        overloaded{
            [&](const CasQuery&) {},
            [&](const CasQueryResp& b) { w.tag(b.fin_tag); },
            [&](const CasPreWrite& b) {
              w.tag(b.tag);
              w.blob(b.element);
            },
            [&](const CasPreAck& b) { w.tag(b.tag); },
            [&](const CasFinalize& b) {
              w.tag(b.tag);
              w.u8(b.want_element ? 1 : 0);
            },
            [&](const CasFinAck& b) {
              w.tag(b.tag);
              w.u8(b.has_element ? 1 : 0);
              w.blob(b.element);
            },
        },
        m->body());
    return true;
  }

  bool size_of(const Payload& msg, std::uint64_t* size) const override {
    const auto* m = dynamic_cast<const baselines::CasMessage*>(&msg);
    if (m == nullptr) return false;
    using namespace lds::baselines;
    constexpr std::uint64_t kBase = kFrameOverheadBytes;
    constexpr std::uint64_t kTag = kTagWireBytes;
    *size = std::visit(
        overloaded{
            [](const CasQuery&) -> std::uint64_t { return kBase; },
            [](const CasQueryResp&) -> std::uint64_t { return kBase + kTag; },
            [](const CasPreWrite& b) -> std::uint64_t {
              return kBase + kTag + 4 + b.element.size();
            },
            [](const CasPreAck&) -> std::uint64_t { return kBase + kTag; },
            [](const CasFinalize&) -> std::uint64_t {
              return kBase + kTag + 1;
            },
            [](const CasFinAck& b) -> std::uint64_t {
              return kBase + kTag + 1 + 4 + b.element.size();
            },
        },
        m->body());
    return true;
  }

  Status decode_body(std::uint8_t type, ObjectId obj, OpId op, Reader& r,
                     MessagePtr* out) const override {
    using namespace lds::baselines;
    CasBody body;
    switch (type) {
      case 0:
        body = CasQuery{};
        break;
      case 1: {
        CasQueryResp b;
        if (!r.tag(&b.fin_tag)) return truncated("CasQueryResp.fin_tag");
        body = b;
        break;
      }
      case 2: {
        CasPreWrite b;
        if (!r.tag(&b.tag)) return truncated("CasPreWrite.tag");
        if (!r.blob(&b.element)) return truncated("CasPreWrite.element");
        body = std::move(b);
        break;
      }
      case 3: {
        CasPreAck b;
        if (!r.tag(&b.tag)) return truncated("CasPreAck.tag");
        body = b;
        break;
      }
      case 4: {
        CasFinalize b;
        std::uint8_t want = 0;
        if (!r.tag(&b.tag) || !r.u8(&want)) return truncated("CasFinalize");
        b.want_element = want != 0;
        body = b;
        break;
      }
      case 5: {
        CasFinAck b;
        std::uint8_t has = 0;
        if (!r.tag(&b.tag) || !r.u8(&has)) return truncated("CasFinAck");
        b.has_element = has != 0;
        if (!r.blob(&b.element)) return truncated("CasFinAck.element");
        body = std::move(b);
        break;
      }
      default:
        return unknown_type("cas", type);
    }
    *out = baselines::CasMessage::make(obj, op, std::move(body));
    return Status::Ok();
  }
};

// ---- Family::Heartbeat -------------------------------------------------------

class HeartbeatCodec final : public FamilyCodec {
 public:
  const char* name() const override { return "heartbeat"; }

  bool encode_body(const Payload& msg, Writer& w,
                   WireInfo* info) const override {
    if (const auto* ping = dynamic_cast<const core::HeartbeatPing*>(&msg)) {
      info->type = 0;
      w.u64(ping->seq());
      return true;
    }
    if (const auto* pong = dynamic_cast<const core::HeartbeatPong*>(&msg)) {
      info->type = 1;
      w.u64(pong->seq());
      return true;
    }
    return false;
  }

  bool size_of(const Payload& msg, std::uint64_t* size) const override {
    if (dynamic_cast<const core::HeartbeatPing*>(&msg) == nullptr &&
        dynamic_cast<const core::HeartbeatPong*>(&msg) == nullptr) {
      return false;
    }
    *size = kFrameOverheadBytes + 8;
    return true;
  }

  Status decode_body(std::uint8_t type, ObjectId obj, OpId op, Reader& r,
                     MessagePtr* out) const override {
    (void)obj;
    (void)op;
    std::uint64_t seq = 0;
    if (!r.u64(&seq)) return truncated("heartbeat.seq");
    switch (type) {
      case 0:
        *out = std::make_shared<core::HeartbeatPing>(seq);
        return Status::Ok();
      case 1:
        *out = std::make_shared<core::HeartbeatPong>(seq);
        return Status::Ok();
      default:
        return unknown_type("heartbeat", type);
    }
  }
};

// ---- registry ----------------------------------------------------------------

std::atomic<const FamilyCodec*> g_families[kMaxFamilies] = {};

void ensure_builtins() {
  static const bool registered = [] {
    static const LdsCodec lds;
    static const AbdCodec abd;
    static const CasCodec cas;
    static const HeartbeatCodec hb;
    register_family(Family::Lds, &lds);
    register_family(Family::Abd, &abd);
    register_family(Family::Cas, &cas);
    register_family(Family::Heartbeat, &hb);
    return true;
  }();
  (void)registered;
}

const FamilyCodec* family_codec(std::uint8_t f) {
  return f < kMaxFamilies
             ? g_families[f].load(std::memory_order_acquire)
             : nullptr;
}

}  // namespace

void register_family(Family f, const FamilyCodec* impl) {
  const auto idx = static_cast<std::size_t>(f);
  LDS_REQUIRE(idx < kMaxFamilies, "codec::register_family: family id too big");
  LDS_REQUIRE(impl != nullptr, "codec::register_family: null codec");
  const FamilyCodec* prev =
      g_families[idx].exchange(impl, std::memory_order_acq_rel);
  LDS_REQUIRE(prev == nullptr || prev == impl,
              "codec::register_family: family registered twice");
}

Frame encode(const Payload& msg) {
  ensure_builtins();
  for (std::size_t f = 0; f < kMaxFamilies; ++f) {
    const FamilyCodec* fc = family_codec(static_cast<std::uint8_t>(f));
    if (fc == nullptr) continue;
    Writer fixed(32);
    WireInfo info;
    if (!fc->encode_body(msg, fixed, &info)) continue;
    const Bytes fields = std::move(fixed).take();
    Frame frame;
    frame.body = info.has_body ? info.body : Value{};
    Writer w(kFrameOverheadBytes + fields.size());
    w.u32(0);  // frame-length placeholder, patched below
    w.u16(kMagic);
    w.u8(kWireVersion);
    w.u8(static_cast<std::uint8_t>(f));
    w.u8(info.type);
    w.u32(info.obj);
    w.u64(info.op);
    w.u32(static_cast<std::uint32_t>(frame.body.size()));
    w.append(fields.data(), fields.size());
    const std::size_t total = w.size() + frame.body.size();
    w.patch_u32(0, static_cast<std::uint32_t>(total - kLenPrefixBytes));
    frame.head = std::move(w).take();
    return frame;
  }
  LDS_REQUIRE(false, "codec::encode: payload belongs to no known family");
  return {};
}

std::uint64_t encoded_size(const Payload& msg) {
  ensure_builtins();
  for (std::size_t f = 0; f < kMaxFamilies; ++f) {
    const FamilyCodec* fc = family_codec(static_cast<std::uint8_t>(f));
    if (fc == nullptr) continue;
    std::uint64_t size = 0;
    if (fc->size_of(msg, &size)) return size;
  }
  LDS_REQUIRE(false, "codec::encoded_size: payload belongs to no known family");
  return 0;
}

Status frame_length(const std::uint8_t* data, std::size_t len,
                    std::size_t* total) {
  *total = 0;
  if (len < kLenPrefixBytes) return Status::Ok();  // need more bytes
  std::uint32_t n = 0;
  std::memcpy(&n, data, 4);
  if (n > kMaxFrameBytes) {
    return Status::InvalidArgument("oversized frame: " + std::to_string(n) +
                                   " bytes exceeds limit");
  }
  *total = kLenPrefixBytes + n;
  return Status::Ok();
}

namespace {

/// Parsed generic header of one frame (prefix included in `total`).
struct FrameHeader {
  std::uint8_t family = 0;
  std::uint8_t type = 0;
  ObjectId obj = 0;
  OpId op = kNoOp;
  std::size_t total = 0;    ///< full frame size, prefix included
  std::size_t payload = 0;  ///< trailing payload bytes within `total`
};

/// Parse and validate the fixed header.  Requires len >= kFrameOverheadBytes
/// (the caller gates on frame_length / buffered bytes first).
Status parse_header(const std::uint8_t* data, std::size_t len,
                    FrameHeader* h) {
  std::size_t total = 0;
  if (Status s = frame_length(data, len, &total); !s.ok()) return s;
  if (total < kFrameOverheadBytes) {
    return Status::InvalidArgument("runt frame: " + std::to_string(total) +
                                   " bytes");
  }
  Reader r(data + kLenPrefixBytes, kHeaderBytes);
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint32_t payload = 0;
  if (!r.u16(&magic) || !r.u8(&version) || !r.u8(&h->family) ||
      !r.u8(&h->type) || !r.u32(&h->obj) || !r.u64(&h->op) ||
      !r.u32(&payload)) {
    return truncated("header");
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("bad magic 0x" + std::to_string(magic));
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unknown wire version " +
                                   std::to_string(version));
  }
  if (kFrameOverheadBytes + payload > total) {
    return Status::InvalidArgument(
        "payload of " + std::to_string(payload) +
        " bytes overruns frame of " + std::to_string(total));
  }
  h->total = total;
  h->payload = payload;
  return Status::Ok();
}

/// Shared tail of both decode paths: fields reader (payload pre-installed),
/// family dispatch, exact-consumption checks.
Status decode_fields(const FrameHeader& h, Reader& r, MessagePtr* out) {
  const FamilyCodec* fc = family_codec(h.family);
  if (fc == nullptr) {
    return Status::InvalidArgument("unknown family id " +
                                   std::to_string(h.family));
  }
  MessagePtr msg;
  if (Status s = fc->decode_body(h.type, h.obj, h.op, r, &msg); !s.ok()) {
    return s;
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("frame has " +
                                   std::to_string(r.remaining()) +
                                   " trailing bytes");
  }
  if (r.payload_pending() && h.payload > 0) {
    return Status::InvalidArgument("type carries no payload but frame has " +
                                   std::to_string(h.payload) +
                                   " payload bytes");
  }
  *out = std::move(msg);
  return Status::Ok();
}

}  // namespace

Status decode(const std::uint8_t* data, std::size_t len, MessagePtr* out,
              std::size_t* consumed) {
  ensure_builtins();
  std::size_t total = 0;
  if (Status s = frame_length(data, len, &total); !s.ok()) return s;
  if (total == 0 || len < total) {
    return truncated("have " + std::to_string(len) + " bytes");
  }
  FrameHeader h;
  if (Status s = parse_header(data, len, &h); !s.ok()) return s;
  const std::size_t fields_len = h.total - kFrameOverheadBytes - h.payload;
  Reader r(data + kFrameOverheadBytes, fields_len);
  const std::uint8_t* pay = data + kFrameOverheadBytes + fields_len;
  r.set_payload(Value(Bytes(pay, pay + h.payload)));
  if (Status s = decode_fields(h, r, out); !s.ok()) return s;
  if (consumed != nullptr) *consumed = h.total;
  return Status::Ok();
}

Status decode(const Bytes& frame, MessagePtr* out) {
  return decode(frame.data(), frame.size(), out);
}

Status decode_with_payload(const std::uint8_t* head, std::size_t head_len,
                           Value payload, MessagePtr* out) {
  ensure_builtins();
  if (head_len < kFrameOverheadBytes) return truncated("header");
  FrameHeader h;
  if (Status s = parse_header(head, head_len, &h); !s.ok()) return s;
  if (h.payload != payload.size() || head_len != h.total - h.payload) {
    return Status::InvalidArgument(
        "head/payload split disagrees with header: head " +
        std::to_string(head_len) + " + payload " +
        std::to_string(payload.size()) + " vs frame " +
        std::to_string(h.total) + "/" + std::to_string(h.payload));
  }
  Reader r(head + kFrameOverheadBytes, head_len - kFrameOverheadBytes);
  r.set_payload(std::move(payload));
  return decode_fields(h, r, out);
}

Status frame_layout(const std::uint8_t* data, std::size_t len,
                    std::size_t* total, std::size_t* payload) {
  *total = 0;
  *payload = 0;
  if (len < kLenPrefixBytes) return Status::Ok();  // need more bytes
  std::size_t t = 0;
  if (Status s = frame_length(data, len, &t); !s.ok()) return s;
  if (len < kFrameOverheadBytes) {
    // Frame extent known but header incomplete: a runt total is already
    // decidable, otherwise ask for more bytes.
    if (t < kFrameOverheadBytes) {
      return Status::InvalidArgument("runt frame: " + std::to_string(t) +
                                     " bytes");
    }
    return Status::Ok();
  }
  FrameHeader h;
  if (Status s = parse_header(data, len, &h); !s.ok()) return s;
  *total = h.total;
  *payload = h.payload;
  return Status::Ok();
}

}  // namespace lds::net::codec
