// Execution engines: the seam between the protocols and whatever drives them.
//
// The paper's model (Section II-a) is an asynchronous message-passing system;
// nothing in it requires ONE global clock.  An Engine owns a set of *lanes* —
// independent execution contexts, each with its own event queue, monotonic
// virtual clock and seed stream — and everything above the network layer
// (clusters, the store service, the harness) schedules onto a lane instead of
// onto a concrete Simulator.  Two implementations:
//
//   * SimEngine — one lane wrapping a single discrete-event Simulator (owned,
//     or external so several clusters share one time base).  This is the
//     deterministic mode: executions are bit-reproducible for a fixed seed,
//     exactly as before the engine abstraction existed.
//
//   * ParallelEngine — N lanes, each a worker OS thread free-running its own
//     Simulator.  Lanes share nothing; cross-lane communication happens only
//     through post(), so components that keep all their state on one lane
//     (e.g. one store shard) never contend.  Executions are not reproducible
//     (OS scheduling interleaves lanes), so correctness is established by the
//     linearizability checkers instead of by replay.
//
// Lane discipline: a lane's Simulator must only be touched from tasks running
// on that lane (or before start() / after drain(), when no worker runs).
// post() is the only thread-safe entry point; it runs the task inline when
// already on the target lane.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/sim.h"

namespace lds::net {

/// How a multi-shard deployment executes: one deterministic simulator, or
/// one free-running event loop per shard group.
enum class EngineMode { Deterministic, Parallel };

const char* engine_mode_name(EngineMode m);
std::optional<EngineMode> parse_engine_mode(std::string_view name);

class Engine {
 public:
  using Task = std::function<void()>;

  virtual ~Engine() = default;

  virtual const char* name() const = 0;
  /// True when executions replay bit-identically for a fixed seed.
  virtual bool deterministic() const = 0;
  virtual std::size_t lanes() const = 0;

  /// The lane's event queue + virtual clock.  Subject to the lane
  /// discipline above.
  virtual Simulator& lane_sim(std::size_t lane) = 0;

  /// Derived seed stream for per-lane randomness: a pure function of the
  /// engine seed and the lane index, so a deployment's seeding is stable
  /// under Deterministic <-> Parallel switches.
  virtual std::uint64_t lane_seed(std::size_t lane) const = 0;

  /// Thread-safe: run `fn` on `lane` (inline when already on it, before the
  /// lane's next scheduled event otherwise).
  virtual void post(std::size_t lane, Task fn) = 0;

  /// The lane the calling thread is executing on, or nullopt when the caller
  /// is not a lane of this engine (external threads, other engines).  Lets
  /// compute fan-outs (codes::StripedCode's lane-parallel encode) post helper
  /// tasks to every lane EXCEPT their own, keeping post()'s inline-on-own-lane
  /// rule from serialising the fan-out.
  virtual std::optional<std::size_t> current_lane() const = 0;

  /// Schedule `fn` `delay` virtual time units from now on the *calling*
  /// lane.  Must be called from lane context (any call site is lane context
  /// under SimEngine).
  virtual void after_here(SimTime delay, Task fn) = 0;

  /// Foreground-activity gauge: while a lane's hold count is positive its
  /// worker free-runs; at zero, background-only event chains (heartbeat
  /// loops) advance at a bounded pace so virtual time cannot gallop
  /// unboundedly between client operations.  No-ops on SimEngine.
  virtual void hold(std::size_t lane) { (void)lane; }
  virtual void release(std::size_t lane) { (void)lane; }

  /// Start / stop the worker threads (no-ops on SimEngine).  Between
  /// construction and start() every lane is safely single-threaded, which is
  /// where deployments build their clusters and arm their timers.
  virtual void start() {}
  virtual void stop() {}

  /// Barrier: run until every lane's inbox and event queue are empty.  The
  /// caller must not submit concurrently.
  virtual void drain() = 0;

  /// Run until `settled()` holds.  `settled` is evaluated on the driving
  /// thread, so under a parallel engine it must read only thread-safe state.
  /// Returns false when the engine stalled (or timed out) first.
  virtual bool drain_until(const std::function<bool()>& settled) = 0;

  /// Total events executed across lanes.  Exact when quiescent; a lower
  /// bound while workers run.
  virtual std::uint64_t events_executed() const = 0;
};

/// Deterministic engine: one lane over one discrete-event Simulator.
class SimEngine final : public Engine {
 public:
  /// Own a fresh simulator.
  explicit SimEngine(std::uint64_t seed = 1);
  /// Wrap an external simulator (the pre-engine "shared Simulator" pattern:
  /// several clusters on one time base).  Must outlive the engine.
  explicit SimEngine(Simulator& external, std::uint64_t seed = 1);

  Simulator& sim() { return *sim_; }

  const char* name() const override { return "sim"; }
  bool deterministic() const override { return true; }
  std::size_t lanes() const override { return 1; }
  Simulator& lane_sim(std::size_t lane) override;
  std::uint64_t lane_seed(std::size_t lane) const override;
  void post(std::size_t lane, Task fn) override;
  std::optional<std::size_t> current_lane() const override { return 0; }
  void after_here(SimTime delay, Task fn) override;
  void drain() override { sim_->run(); }
  bool drain_until(const std::function<bool()>& settled) override;
  std::uint64_t events_executed() const override {
    return sim_->events_executed();
  }

 private:
  std::unique_ptr<Simulator> owned_;
  Simulator* sim_ = nullptr;
  std::uint64_t seed_ = 1;
};

/// Parallel engine: N worker event loops, one Simulator per lane.
class ParallelEngine final : public Engine {
 public:
  struct Options {
    /// Worker lanes; 0 = std::thread::hardware_concurrency() (min 1).
    std::size_t lanes = 0;
    std::uint64_t seed = 1;
    /// Events per scheduling quantum while foreground work is in flight
    /// (between quanta the worker re-checks its inbox).
    std::size_t chunk_events = 512;
    /// Virtual-time horizon a background-only lane may advance per ~1ms of
    /// wall time (bounds heartbeat-loop galloping while no client op is in
    /// flight).
    double background_horizon = 64.0;
  };

  ParallelEngine();  // default Options
  explicit ParallelEngine(Options opt);
  ~ParallelEngine() override;
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  const char* name() const override { return "parallel"; }
  bool deterministic() const override { return false; }
  std::size_t lanes() const override { return lanes_.size(); }
  Simulator& lane_sim(std::size_t lane) override;
  std::uint64_t lane_seed(std::size_t lane) const override;
  void post(std::size_t lane, Task fn) override;
  std::optional<std::size_t> current_lane() const override;
  void after_here(SimTime delay, Task fn) override;
  void hold(std::size_t lane) override;
  void release(std::size_t lane) override;
  void start() override;
  void stop() override;
  void drain() override;
  bool drain_until(const std::function<bool()>& settled) override;
  std::uint64_t events_executed() const override;

 private:
  struct Lane {
    Simulator sim;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Task> inbox;  ///< guarded by mu
    std::atomic<std::int64_t> hold{0};
    std::atomic<bool> busy{false};
    /// sim.idle() published by the worker at every busy=false transition;
    /// only meaningful while busy is false (the worker is the sole sim
    /// mutator, and it re-raises busy under mu before touching sim again).
    std::atomic<bool> sim_idle{true};
    /// sim.events_executed() published after each quantum, so aggregate
    /// progress is readable without touching the lane's Simulator.
    std::atomic<std::uint64_t> events{0};
    std::thread worker;
  };

  void worker_loop(std::size_t lane);
  /// One locked pass over all lanes: true when none is executing and every
  /// inbox + event queue is empty.
  bool quiescent_pass();
  /// Quiescent with a stable cross-lane post count (nothing in flight).
  bool quiescent_stable();

  Options opt_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> posts_{0};
};

}  // namespace lds::net
