#include "net/latency.h"

namespace lds::net {

const char* link_class_name(LinkClass c) {
  switch (c) {
    case LinkClass::ClientL1: return "client-L1";
    case LinkClass::L1L1: return "L1-L1";
    case LinkClass::L1L2: return "L1-L2";
    case LinkClass::Other: return "other";
  }
  return "?";
}

LinkClass classify_link(Role from, Role to) {
  const auto is_client = [](Role r) {
    return r == Role::Writer || r == Role::Reader;
  };
  if ((is_client(from) && to == Role::ServerL1) ||
      (from == Role::ServerL1 && is_client(to))) {
    return LinkClass::ClientL1;
  }
  if (from == Role::ServerL1 && to == Role::ServerL1) return LinkClass::L1L1;
  if ((from == Role::ServerL1 && to == Role::ServerL2) ||
      (from == Role::ServerL2 && to == Role::ServerL1)) {
    return LinkClass::L1L2;
  }
  return LinkClass::Other;
}

namespace {
SimTime pick(LinkClass c, SimTime t1, SimTime t0, SimTime t2) {
  switch (c) {
    case LinkClass::ClientL1: return t1;
    case LinkClass::L1L1: return t0;
    case LinkClass::L1L2: return t2;
    case LinkClass::Other: return t2;  // conservative
  }
  return t2;
}
}  // namespace

SimTime FixedLatency::sample(LinkClass c, Rng&) {
  return pick(c, tau1_, tau0_, tau2_);
}

SimTime UniformLatency::sample(LinkClass c, Rng& rng) {
  const SimTime tau = pick(c, tau1_, tau0_, tau2_);
  return rng.uniform_real(lo_ * tau, tau);
}

SimTime ExponentialLatency::sample(LinkClass c, Rng& rng) {
  const SimTime mean = pick(c, mean1_, mean0_, mean2_);
  // Exponential can return ~0; clamp to a tiny positive delay so an event is
  // always strictly in the future.
  const SimTime d = rng.exponential(mean);
  return d > 1e-9 ? d : 1e-9;
}

}  // namespace lds::net
