#include "net/engine.h"

#include <chrono>

#include "common/assert.h"

namespace lds::net {

const char* engine_mode_name(EngineMode m) {
  switch (m) {
    case EngineMode::Deterministic: return "sim";
    case EngineMode::Parallel: return "parallel";
  }
  return "?";
}

std::optional<EngineMode> parse_engine_mode(std::string_view name) {
  if (name == "sim" || name == "deterministic") {
    return EngineMode::Deterministic;
  }
  if (name == "parallel") return EngineMode::Parallel;
  return std::nullopt;
}

namespace {
// Lane context of the calling thread (set only on ParallelEngine workers);
// lets post() run same-lane tasks inline and after_here() find its clock.
thread_local ParallelEngine* tls_engine = nullptr;
thread_local std::size_t tls_lane = 0;
}  // namespace

// ---- SimEngine --------------------------------------------------------------

SimEngine::SimEngine(std::uint64_t seed)
    : owned_(std::make_unique<Simulator>()), sim_(owned_.get()), seed_(seed) {}

SimEngine::SimEngine(Simulator& external, std::uint64_t seed)
    : sim_(&external), seed_(seed) {}

Simulator& SimEngine::lane_sim(std::size_t lane) {
  LDS_REQUIRE(lane == 0, "SimEngine: lane out of range");
  return *sim_;
}

std::uint64_t SimEngine::lane_seed(std::size_t lane) const {
  LDS_REQUIRE(lane == 0, "SimEngine: lane out of range");
  return mix_seed(seed_, 0);
}

void SimEngine::post(std::size_t lane, Task fn) {
  LDS_REQUIRE(lane == 0, "SimEngine: lane out of range");
  fn();
}

void SimEngine::after_here(SimTime delay, Task fn) {
  sim_->after(delay, std::move(fn));
}

bool SimEngine::drain_until(const std::function<bool()>& settled) {
  while (!settled() && sim_->step()) {
  }
  return settled();
}

// ---- ParallelEngine ---------------------------------------------------------

ParallelEngine::ParallelEngine() : ParallelEngine(Options()) {}

ParallelEngine::ParallelEngine(Options opt) : opt_(opt) {
  if (opt_.lanes == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opt_.lanes = hw == 0 ? 1 : hw;
  }
  LDS_REQUIRE(opt_.chunk_events >= 1, "ParallelEngine: chunk_events >= 1");
  LDS_REQUIRE(opt_.background_horizon > 0,
              "ParallelEngine: background_horizon > 0");
  for (std::size_t i = 0; i < opt_.lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

ParallelEngine::~ParallelEngine() { stop(); }

Simulator& ParallelEngine::lane_sim(std::size_t lane) {
  return lanes_.at(lane)->sim;
}

std::uint64_t ParallelEngine::lane_seed(std::size_t lane) const {
  LDS_REQUIRE(lane < lanes_.size(), "ParallelEngine: lane out of range");
  return mix_seed(opt_.seed, lane);
}

void ParallelEngine::post(std::size_t lane, Task fn) {
  if (tls_engine == this && tls_lane == lane) {
    fn();  // already on the target lane: no queue hop, no self-deadlock
    return;
  }
  Lane& ln = *lanes_.at(lane);
  posts_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(ln.mu);
    ln.inbox.push_back(std::move(fn));
  }
  ln.cv.notify_one();
}

std::optional<std::size_t> ParallelEngine::current_lane() const {
  if (tls_engine == this) return tls_lane;
  return std::nullopt;
}

void ParallelEngine::after_here(SimTime delay, Task fn) {
  LDS_REQUIRE(tls_engine == this,
              "ParallelEngine::after_here: not on a worker lane");
  lanes_[tls_lane]->sim.after(delay, std::move(fn));
}

void ParallelEngine::hold(std::size_t lane) {
  lanes_.at(lane)->hold.fetch_add(1, std::memory_order_acq_rel);
}

void ParallelEngine::release(std::size_t lane) {
  lanes_.at(lane)->hold.fetch_sub(1, std::memory_order_acq_rel);
}

void ParallelEngine::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false);
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    lanes_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
}

void ParallelEngine::stop() {
  if (!started_) return;
  stop_.store(true);
  for (auto& ln : lanes_) ln->cv.notify_all();
  for (auto& ln : lanes_) {
    if (ln->worker.joinable()) ln->worker.join();
  }
  started_ = false;
}

void ParallelEngine::worker_loop(std::size_t lane) {
  tls_engine = this;
  tls_lane = lane;
  Lane& ln = *lanes_[lane];
  std::vector<Task> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(ln.mu);
      while (ln.inbox.empty() && !stop_.load(std::memory_order_acquire) &&
             ln.sim.idle()) {
        ln.sim_idle.store(true, std::memory_order_release);
        ln.busy.store(false, std::memory_order_release);
        ln.cv.wait(lk);
      }
      if (stop_.load(std::memory_order_acquire) && ln.inbox.empty()) {
        ln.sim_idle.store(ln.sim.idle(), std::memory_order_release);
        ln.busy.store(false, std::memory_order_release);
        break;
      }
      ln.busy.store(true, std::memory_order_release);
      batch.swap(ln.inbox);
    }
    for (auto& fn : batch) fn();
    batch.clear();

    if (ln.hold.load(std::memory_order_acquire) > 0) {
      // Foreground work in flight: free-run a bounded quantum, then loop to
      // re-check the inbox (cross-lane posts, stop).
      ln.sim.run(opt_.chunk_events);
    } else if (!ln.sim.idle()) {
      // Background-only chains (heartbeat loops reschedule themselves
      // forever): advance a bounded virtual horizon, then pause, so repair
      // detection keeps progressing without virtual time galloping.
      ln.sim.run_until(ln.sim.now() + opt_.background_horizon);
      ln.events.store(ln.sim.events_executed(), std::memory_order_release);
      std::unique_lock<std::mutex> lk(ln.mu);
      if (ln.inbox.empty() && !stop_.load(std::memory_order_acquire) &&
          ln.hold.load(std::memory_order_acquire) <= 0) {
        ln.sim_idle.store(ln.sim.idle(), std::memory_order_release);
        ln.busy.store(false, std::memory_order_release);
        ln.cv.wait_for(lk, std::chrono::milliseconds(1));
      }
    }
    ln.events.store(ln.sim.events_executed(), std::memory_order_release);
  }
}

bool ParallelEngine::quiescent_pass() {
  for (auto& ln : lanes_) {
    std::lock_guard<std::mutex> lk(ln->mu);
    // sim_idle (not sim.idle()): the lane's Simulator may only be touched
    // by its worker; the worker publishes idleness at every busy=false
    // transition, and re-raises busy under mu before touching sim again.
    if (ln->busy.load(std::memory_order_acquire) || !ln->inbox.empty() ||
        !ln->sim_idle.load(std::memory_order_acquire)) {
      return false;
    }
  }
  return true;
}

bool ParallelEngine::quiescent_stable() {
  // A lane observed idle can be re-awakened by a cross-lane post from a lane
  // inspected later in the same pass; two passes around a stable post count
  // close that window (posts only originate from lane execution, and no lane
  // was executing during either pass).
  const std::uint64_t before = posts_.load(std::memory_order_acquire);
  if (!quiescent_pass()) return false;
  if (posts_.load(std::memory_order_acquire) != before) return false;
  return quiescent_pass();
}

void ParallelEngine::drain() {
  if (!started_) {
    // Single-threaded (construction phase or after stop()): run inboxes and
    // queues to empty inline, lane by lane, until globally stable.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < lanes_.size(); ++i) {
        Lane& ln = *lanes_[i];
        std::vector<Task> batch;
        {
          std::lock_guard<std::mutex> lk(ln.mu);
          batch.swap(ln.inbox);
        }
        if (!batch.empty() || !ln.sim.idle()) progress = true;
        tls_engine = this;  // lane context for tasks that call after_here
        tls_lane = i;
        for (auto& fn : batch) fn();
        ln.sim.run();
        ln.events.store(ln.sim.events_executed(), std::memory_order_release);
        tls_engine = nullptr;
      }
    }
    return;
  }
  while (!quiescent_stable()) {
    for (auto& ln : lanes_) ln->cv.notify_one();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

bool ParallelEngine::drain_until(const std::function<bool()>& settled) {
  LDS_REQUIRE(started_, "ParallelEngine::drain_until: engine not started");
  // Safety valve mirroring StoreService::quiesce's event guard: a healthy
  // deployment settles in well under this much wall time.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (!settled()) {
    if (quiescent_stable() && !settled()) return false;  // stalled
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

std::uint64_t ParallelEngine::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& ln : lanes_) {
    n += ln->events.load(std::memory_order_acquire);
  }
  return n;
}

}  // namespace lds::net
