// Link latency models.
//
// The paper's bounded-latency analysis (Section V-A) distinguishes three
// link classes with delay upper bounds:
//   tau1: client <-> L1 server,
//   tau0: L1 server <-> L1 server,
//   tau2: L1 server <-> L2 server (typically the slowest; mu = tau2/tau1).
// Links never drop messages (reliable channels); the model only chooses
// *when* a message arrives.  For liveness/atomicity stress tests we sample
// delays from unbounded-ish distributions to approximate asynchrony; for the
// latency benches (Lemma V.4) we use the deterministic upper bounds so that
// measured completion times can be compared against the paper's formulas.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "net/sim.h"

namespace lds::net {

/// Classification of a (from, to) role pair.
enum class LinkClass : std::uint8_t {
  ClientL1,  // writer/reader <-> L1
  L1L1,      // within the edge layer (broadcast primitive relays)
  L1L2,      // edge <-> back-end (internal operations)
  Other,     // anything else (client<->L2 never happens in LDS)
};
inline constexpr int kNumLinkClasses = 4;

const char* link_class_name(LinkClass c);

LinkClass classify_link(Role from, Role to);

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// Delay for a message on a link of class `c`.  Must be > 0.
  virtual SimTime sample(LinkClass c, Rng& rng) = 0;
};

/// Deterministic delays: exactly tau1 / tau0 / tau2 per class.  This realizes
/// the *worst case* of the bounded-latency model, which is what Lemma V.4's
/// bounds are stated against.
class FixedLatency final : public LatencyModel {
 public:
  FixedLatency(SimTime tau1, SimTime tau0, SimTime tau2)
      : tau1_(tau1), tau0_(tau0), tau2_(tau2) {
    LDS_REQUIRE(tau1 > 0 && tau0 > 0 && tau2 > 0,
                "FixedLatency: delays must be positive");
  }
  SimTime sample(LinkClass c, Rng& rng) override;

 private:
  SimTime tau1_, tau0_, tau2_;
};

/// Uniform delays in [lo * tau, tau] per class: bounded latency with jitter.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime tau1, SimTime tau0, SimTime tau2, double lo_frac)
      : tau1_(tau1), tau0_(tau0), tau2_(tau2), lo_(lo_frac) {
    LDS_REQUIRE(tau1 > 0 && tau0 > 0 && tau2 > 0, "UniformLatency: delays");
    LDS_REQUIRE(lo_frac > 0 && lo_frac <= 1, "UniformLatency: lo_frac in (0,1]");
  }
  SimTime sample(LinkClass c, Rng& rng) override;

 private:
  SimTime tau1_, tau0_, tau2_;
  double lo_;
};

/// Exponential delays with per-class means: a heavy-tailed approximation of
/// asynchrony used by the correctness stress tests (no finite upper bound on
/// any fixed quantile's support, so message reorderings are adversarial-ish
/// across seeds).
class ExponentialLatency final : public LatencyModel {
 public:
  ExponentialLatency(SimTime mean1, SimTime mean0, SimTime mean2)
      : mean1_(mean1), mean0_(mean0), mean2_(mean2) {
    LDS_REQUIRE(mean1 > 0 && mean0 > 0 && mean2 > 0,
                "ExponentialLatency: means must be positive");
  }
  SimTime sample(LinkClass c, Rng& rng) override;

 private:
  SimTime mean1_, mean0_, mean2_;
};

}  // namespace lds::net
