#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.h"
#include "net/network.h"

namespace lds::net {

// ---- InProcTransport --------------------------------------------------------

void InProcTransport::deliver(NodeId from, NodeId to, MessagePtr msg,
                              SimTime delay) {
  net_.deliver_local(from, to, std::move(msg), delay);
}

// ---- TcpTransport -----------------------------------------------------------

namespace {

Status sys_error(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

TcpTransport::TcpTransport(Options opt) : opt_(opt) {
  LDS_REQUIRE(opt_.max_frame_bytes >= codec::kFrameOverheadBytes,
              "TcpTransport: max_frame_bytes smaller than a frame header");
}

TcpTransport::~TcpTransport() { stop(); }

Status TcpTransport::listen(std::uint16_t port, Handler on_message) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stop_.load(std::memory_order_acquire)) {
    return Status::Unavailable("TcpTransport::listen: transport stopped");
  }
  LDS_REQUIRE(listen_fd_ < 0, "TcpTransport::listen: already listening");
  LDS_REQUIRE(on_message != nullptr, "TcpTransport::listen: null handler");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return sys_error("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status s = sys_error("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = sys_error("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(fd);
  listen_fd_ = fd;
  accept_handler_ = std::move(on_message);
  ensure_loop();
  return Status::Ok();
}

Status TcpTransport::connect(const std::string& host, std::uint16_t port,
                             Handler on_message, NodeId* peer) {
  LDS_REQUIRE(on_message != nullptr, "TcpTransport::connect: null handler");
  LDS_REQUIRE(peer != nullptr, "TcpTransport::connect: null peer out-param");
  if (stop_.load(std::memory_order_acquire)) {
    return Status::Unavailable("TcpTransport::connect: transport stopped");
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::Unavailable("resolve " + host + ": " + gai_strerror(rc));
  }
  const std::string where = "connect " + host + ":" + std::to_string(port);
  int fd = -1;
  Status err = Status::Unavailable(where + ": no address worked");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // Nonblocking BEFORE ::connect: a blocking connect to a black-holed
    // address would sit in the kernel's retransmit schedule for minutes
    // with no way to honor connect_timeout_ms.
    if (!set_nonblocking(fd)) {
      err = sys_error("fcntl " + host);
      ::close(fd);
      fd = -1;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;  // localhost
    if (errno != EINPROGRESS) {
      err = sys_error(where);
      ::close(fd);
      fd = -1;
      continue;
    }
    // Handshake in flight: wait for writability within the budget, then
    // read the kernel's verdict from SO_ERROR.
    pollfd pfd{fd, POLLOUT, 0};
    int pn;
    do {
      pn = ::poll(&pfd, 1, opt_.connect_timeout_ms);
    } while (pn < 0 && errno == EINTR);
    if (pn == 0) {
      err = Status::Unavailable(where + ": timed out after " +
                                std::to_string(opt_.connect_timeout_ms) +
                                "ms");
      ::close(fd);
      fd = -1;
      continue;
    }
    if (pn < 0) {
      err = sys_error("poll " + where);
      ::close(fd);
      fd = -1;
      continue;
    }
    int soerr = 0;
    socklen_t slen = sizeof soerr;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen);
    if (soerr != 0) {
      errno = soerr;
      err = sys_error(where);
      ::close(fd);
      fd = -1;
      continue;
    }
    break;  // connected
  }
  ::freeaddrinfo(res);
  if (fd < 0) return err;
  set_nodelay(fd);

  std::lock_guard<std::mutex> lk(mu_);
  if (stop_.load(std::memory_order_acquire)) {
    ::close(fd);
    return Status::Unavailable("TcpTransport::connect: transport stopped");
  }
  const NodeId id = next_peer_++;
  Conn c;
  c.fd = fd;
  c.handler = std::move(on_message);
  conns_.emplace(id, std::move(c));
  *peer = id;
  ensure_loop();
  wake();
  return Status::Ok();
}

void TcpTransport::deliver(NodeId from, NodeId to, MessagePtr msg,
                           SimTime delay) {
  (void)from;
  (void)delay;  // real networks impose their own latency
  LDS_REQUIRE(msg != nullptr, "TcpTransport::deliver: null message");
  codec::Frame frame = codec::encode(*msg);
  if (frame.size() > opt_.max_frame_bytes) {
    // Never put a frame on the wire the peer must treat as hostile (it
    // would disconnect us).  Dropped like an unknown peer; callers that
    // need a verdict check the cap first (RemoteSession does).
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = conns_.find(to);
  if (it == conns_.end()) return;  // disconnected peer: drop, like Network
  it->second.outq.push_back(std::move(frame));
  wake();
}

void TcpTransport::close_peer(NodeId peer) {
  std::lock_guard<std::mutex> lk(mu_);
  close_locked(peer);
  wake();
}

bool TcpTransport::close_locked(NodeId peer) {
  const auto it = conns_.find(peer);
  if (it == conns_.end()) return false;
  ::close(it->second.fd);
  conns_.erase(it);
  return true;
}

void TcpTransport::stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(mu_);
    wake();
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, c] : conns_) ::close(c.fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  running_.store(false, std::memory_order_release);
}

void TcpTransport::ensure_loop() {
  if (running_.load(std::memory_order_acquire)) return;
  LDS_REQUIRE(!stop_.load(std::memory_order_acquire),
              "TcpTransport: reuse after stop()");
  LDS_REQUIRE(::pipe(wake_fds_) == 0, "TcpTransport: pipe() failed");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop(); });
}

void TcpTransport::wake() {
  if (wake_fds_[1] < 0) return;
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
}

void TcpTransport::loop() {
  struct Delivery {
    Handler handler;
    NodeId peer;
    MessagePtr msg;
  };
  std::vector<pollfd> fds;
  std::vector<NodeId> ids;
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    ids.clear();
    {
      std::lock_guard<std::mutex> lk(mu_);
      fds.push_back({wake_fds_[0], POLLIN, 0});
      ids.push_back(kNoNode);
      if (listen_fd_ >= 0) {
        fds.push_back({listen_fd_, POLLIN, 0});
        ids.push_back(kNoNode);
      }
      for (auto& [id, c] : conns_) {
        short events = POLLIN;
        if (!c.outq.empty()) events |= POLLOUT;
        fds.push_back({c.fd, events, 0});
        ids.push_back(id);
      }
    }
    int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   opt_.poll_interval_ms);
    if (inject_poll_failure_.exchange(false, std::memory_order_acq_rel)) {
      n = -1;
      errno = EBADF;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      // poll itself failed: the loop can no longer move anyone's bytes.
      // Fail every connection through the disconnect handler (silently
      // stranding them would leave callers waiting forever) and mark the
      // transport stopped so listen()/connect() refuse the dead loop.
      fail_loop();
      return;
    }
    std::vector<Delivery> delivered;
    std::vector<NodeId> dropped;
    {
      std::lock_guard<std::mutex> lk(mu_);
      std::size_t i = 0;
      if (fds[i].revents & POLLIN) {  // drain the wakeup pipe
        char buf[256];
        while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
        }
      }
      ++i;
      if (listen_fd_ >= 0) {
        if (fds[i].revents & POLLIN) {
          while (true) {
            const int cfd = ::accept(listen_fd_, nullptr, nullptr);
            if (cfd < 0) break;  // EAGAIN: accepted everything pending
            set_nonblocking(cfd);
            set_nodelay(cfd);
            Conn c;
            c.fd = cfd;
            c.handler = accept_handler_;
            conns_.emplace(next_peer_++, std::move(c));
          }
        }
        ++i;
      }
      for (; i < fds.size(); ++i) {
        const NodeId id = ids[i];
        const auto it = conns_.find(id);
        if (it == conns_.end()) continue;  // closed while we polled
        Conn& c = it->second;
        bool alive = true;
        if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          std::vector<std::pair<Handler, MessagePtr>> msgs;
          alive = read_conn(id, c, &msgs);
          for (auto& [h, m] : msgs) {
            delivered.push_back({std::move(h), id, std::move(m)});
          }
        }
        if (alive && (fds[i].revents & POLLOUT)) alive = flush_conn(c);
        if (!alive) {
          ::close(c.fd);
          conns_.erase(it);
          dropped.push_back(id);
        }
      }
    }
    // Handlers run unlocked: they may call deliver()/close_peer() back in.
    for (Delivery& d : delivered) d.handler(d.peer, std::move(d.msg));
    if (on_disconnect_) {
      for (const NodeId id : dropped) on_disconnect_(id);
    }
  }
}

void TcpTransport::fail_loop() {
  stop_.store(true, std::memory_order_release);
  std::vector<NodeId> dropped;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, c] : conns_) {
      ::close(c.fd);
      dropped.push_back(id);
    }
    conns_.clear();
  }
  if (on_disconnect_) {
    for (const NodeId id : dropped) on_disconnect_(id);
  }
}

void TcpTransport::inject_poll_failure_for_testing() {
  inject_poll_failure_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lk(mu_);
  wake();
}

bool TcpTransport::read_conn(
    NodeId peer, Conn& c,
    std::vector<std::pair<Handler, MessagePtr>>* delivered) {
  (void)peer;
  char buf[65536];
  bool eof = false;
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      c.inbuf.insert(c.inbuf.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      eof = true;  // deliver frames already buffered, then drop the conn
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  std::size_t off = 0;
  while (off < c.inbuf.size()) {
    std::size_t total = 0;
    const Status s =
        codec::frame_length(c.inbuf.data() + off, c.inbuf.size() - off, &total);
    if (!s.ok() || (total != 0 && total > opt_.max_frame_bytes)) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;  // hostile length prefix: disconnect
    }
    if (total == 0 || c.inbuf.size() - off < total) break;  // need more bytes
    MessagePtr msg;
    if (const Status ds = codec::decode(c.inbuf.data() + off, total, &msg);
        !ds.ok()) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;  // malformed frame: disconnect
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    delivered->emplace_back(c.handler, std::move(msg));
    off += total;
  }
  if (off > 0) {
    c.inbuf.erase(c.inbuf.begin(),
                  c.inbuf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return !eof;
}

bool TcpTransport::flush_conn(Conn& c) {
  while (!c.outq.empty()) {
    const codec::Frame& f = c.outq.front();
    const std::size_t head_size = f.head.size();
    const std::size_t total = f.size();
    while (c.out_off < total) {
      const std::uint8_t* p;
      std::size_t len;
      if (c.out_off < head_size) {
        p = f.head.data() + c.out_off;
        len = head_size - c.out_off;
      } else {
        const std::size_t body_off = c.out_off - head_size;
        p = f.body.data() + body_off;
        len = f.body.size() - body_off;
      }
      const ssize_t w = ::send(c.fd, p, len, MSG_NOSIGNAL);
      if (w > 0) {
        bytes_sent_.fetch_add(static_cast<std::uint64_t>(w),
                              std::memory_order_relaxed);
        c.out_off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    c.outq.pop_front();
    c.out_off = 0;
  }
  return true;
}

}  // namespace lds::net
