#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>

#include "common/assert.h"
#include "net/network.h"

namespace lds::net {

// ---- InProcTransport --------------------------------------------------------

void InProcTransport::deliver(NodeId from, NodeId to, MessagePtr msg,
                              SimTime delay) {
  net_.deliver_local(from, to, std::move(msg), delay);
}

// ---- TcpTransport -----------------------------------------------------------

namespace {

/// epoll user-data tags for the two non-connection fds of a shard.
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};
constexpr std::uint64_t kListenTag = ~std::uint64_t{0} - 1;

Status sys_error(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

TcpTransport::TcpTransport(Options opt) : opt_(opt) {
  LDS_REQUIRE(opt_.max_frame_bytes >= codec::kFrameOverheadBytes,
              "TcpTransport: max_frame_bytes smaller than a frame header");
  if (opt_.progress_threads == 0) opt_.progress_threads = 1;
  opt_.backlog_low_watermark =
      std::min(opt_.backlog_low_watermark, opt_.backlog_high_watermark);
}

TcpTransport::~TcpTransport() { stop(); }

Status TcpTransport::ensure_engine() {
  if (running_.load(std::memory_order_acquire)) return Status::Ok();
  LDS_REQUIRE(!stop_.load(std::memory_order_acquire),
              "TcpTransport: reuse after stop()");
  shards_.reserve(opt_.progress_threads);
  for (std::size_t i = 0; i < opt_.progress_threads; ++i) {
    auto sh = std::make_unique<Shard>();
    sh->epfd = ::epoll_create1(0);
    if (sh->epfd < 0) return sys_error("epoll_create1");
    sh->wakefd = ::eventfd(0, EFD_NONBLOCK);
    if (sh->wakefd < 0) {
      const Status s = sys_error("eventfd");
      ::close(sh->epfd);
      return s;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    LDS_REQUIRE(::epoll_ctl(sh->epfd, EPOLL_CTL_ADD, sh->wakefd, &ev) == 0,
                "TcpTransport: cannot register wake fd");
    sh->pool = std::make_unique<BufferPool>(opt_.recv_block_bytes,
                                            opt_.pool_retain_blocks);
    shards_.push_back(std::move(sh));
  }
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread = std::thread([this, i] { shard_loop(i); });
  }
  return Status::Ok();
}

Status TcpTransport::listen(std::uint16_t port, Handler on_message) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  if (stop_.load(std::memory_order_acquire)) {
    return Status::Unavailable("TcpTransport::listen: transport stopped");
  }
  LDS_REQUIRE(listen_fd_ < 0, "TcpTransport::listen: already listening");
  LDS_REQUIRE(on_message != nullptr, "TcpTransport::listen: null handler");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return sys_error("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status s = sys_error("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = sys_error("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(fd);
  accept_handler_ = std::move(on_message);
  if (const Status s = ensure_engine(); !s.ok()) {
    ::close(fd);
    return s;
  }
  listen_fd_ = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(shards_[0]->epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    const Status s = sys_error("epoll_ctl listen");
    ::close(fd);
    listen_fd_ = -1;
    return s;
  }
  return Status::Ok();
}

Status TcpTransport::connect(const std::string& host, std::uint16_t port,
                             Handler on_message, NodeId* peer) {
  LDS_REQUIRE(on_message != nullptr, "TcpTransport::connect: null handler");
  LDS_REQUIRE(peer != nullptr, "TcpTransport::connect: null peer out-param");
  if (stop_.load(std::memory_order_acquire)) {
    return Status::Unavailable("TcpTransport::connect: transport stopped");
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::Unavailable("resolve " + host + ": " + gai_strerror(rc));
  }
  const std::string where = "connect " + host + ":" + std::to_string(port);
  int fd = -1;
  Status err = Status::Unavailable(where + ": no address worked");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // Nonblocking BEFORE ::connect: a blocking connect to a black-holed
    // address would sit in the kernel's retransmit schedule for minutes
    // with no way to honor connect_timeout_ms.
    if (!set_nonblocking(fd)) {
      err = sys_error("fcntl " + host);
      ::close(fd);
      fd = -1;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;  // localhost
    if (errno != EINPROGRESS) {
      err = sys_error(where);
      ::close(fd);
      fd = -1;
      continue;
    }
    // Handshake in flight: wait for writability within the budget, then
    // read the kernel's verdict from SO_ERROR.
    pollfd pfd{fd, POLLOUT, 0};
    int pn;
    do {
      pn = ::poll(&pfd, 1, opt_.connect_timeout_ms);
    } while (pn < 0 && errno == EINTR);
    if (pn == 0) {
      err = Status::Unavailable(where + ": timed out after " +
                                std::to_string(opt_.connect_timeout_ms) +
                                "ms");
      ::close(fd);
      fd = -1;
      continue;
    }
    if (pn < 0) {
      err = sys_error("poll " + where);
      ::close(fd);
      fd = -1;
      continue;
    }
    int soerr = 0;
    socklen_t slen = sizeof soerr;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen);
    if (soerr != 0) {
      errno = soerr;
      err = sys_error(where);
      ::close(fd);
      fd = -1;
      continue;
    }
    break;  // connected
  }
  ::freeaddrinfo(res);
  if (fd < 0) return err;
  set_nodelay(fd);

  {
    std::lock_guard<std::mutex> lk(engine_mu_);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return Status::Unavailable("TcpTransport::connect: transport stopped");
    }
    if (const Status s = ensure_engine(); !s.ok()) {
      ::close(fd);
      return s;
    }
  }
  const NodeId id = adopt_fd(fd, std::move(on_message));
  if (id == kNoNode) {
    return Status::Unavailable("TcpTransport::connect: transport stopped");
  }
  *peer = id;
  return Status::Ok();
}

NodeId TcpTransport::adopt_fd(int fd, Handler handler) {
  const NodeId id = next_peer_.fetch_add(1, std::memory_order_relaxed);
  Shard& sh = shard_of(id);
  FrameReassembler::Options ropt;
  ropt.max_frame_bytes = opt_.max_frame_bytes;
  ropt.zero_copy_threshold = opt_.zero_copy_threshold;
  std::lock_guard<std::mutex> lk(sh.mu);
  if (stop_.load(std::memory_order_acquire)) {
    ::close(fd);
    return kNoNode;
  }
  auto conn = std::make_unique<Conn>(sh.pool.get(), ropt);
  conn->fd = fd;
  conn->handler = std::move(handler);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
  if (::epoll_ctl(sh.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return kNoNode;
  }
  sh.conns.emplace(id, std::move(conn));
  return id;
}

void TcpTransport::deliver(NodeId from, NodeId to, MessagePtr msg,
                           SimTime delay) {
  (void)from;
  (void)delay;  // real networks impose their own latency
  LDS_REQUIRE(msg != nullptr, "TcpTransport::deliver: null message");
  codec::Frame frame = codec::encode(*msg);
  if (frame.size() > opt_.max_frame_bytes) {
    // Never put a frame on the wire the peer must treat as hostile (it
    // would disconnect us).  Dropped like an unknown peer; callers that
    // need a verdict check the cap first (RemoteSession does).
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!running_.load(std::memory_order_acquire)) return;  // no peers exist
  const std::size_t frame_bytes = frame.size();
  Shard& sh = shard_of(to);
  std::unique_lock<std::mutex> lk(sh.mu);
  auto it = sh.conns.find(to);
  if (it == sh.conns.end()) return;  // disconnected peer: drop, like Network
  Conn* c = it->second.get();
  // Backlog flow control: application threads block at the high watermark
  // until the progress thread drains the queue below the low watermark.
  // The shard's own progress thread is exempt — a handler-generated reply
  // blocking on its own unflushed queue would deadlock the drain.
  if (std::this_thread::get_id() != sh.thread_id &&
      c->outq_bytes + frame_bytes > opt_.backlog_high_watermark) {
    backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
    sh.cv.wait(lk, [&] {
      if (stop_.load(std::memory_order_acquire)) return true;
      const auto it2 = sh.conns.find(to);
      return it2 == sh.conns.end() ||
             it2->second->outq_bytes <= opt_.backlog_low_watermark;
    });
    it = sh.conns.find(to);
    if (stop_.load(std::memory_order_acquire) || it == sh.conns.end()) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;  // the peer died while we waited: drop, like Network
    }
    c = it->second.get();
  }
  c->outq.push_back(std::move(frame));
  c->outq_bytes += frame_bytes;
  // Eager send on the caller's thread: an idle socket takes the bytes now
  // instead of waiting for the next progress tick.
  if (!flush_conn(*c)) {
    // The socket broke under us.  Force readiness so the owning progress
    // thread reaps the connection through its normal error path (teardown
    // + disconnect handler happen there, never on an application thread).
    ::shutdown(c->fd, SHUT_RDWR);
    wake(sh);
    return;
  }
  update_write_interest(sh, to, *c);
}

void TcpTransport::update_write_interest(Shard& sh, NodeId peer, Conn& c) {
  const bool want = !c.outq.empty();
  if (want == c.want_write) return;
  epoll_event ev{};
  ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.u64 = static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer));
  if (::epoll_ctl(sh.epfd, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
    c.want_write = want;
  }
}

void TcpTransport::close_peer(NodeId peer) {
  if (!running_.load(std::memory_order_acquire)) return;
  Shard& sh = shard_of(peer);
  std::lock_guard<std::mutex> lk(sh.mu);
  const auto it = sh.conns.find(peer);
  if (it == sh.conns.end()) return;
  ::close(it->second->fd);
  sh.conns.erase(it);
  sh.cv.notify_all();  // waiters on this peer's backlog: it is gone
}

void TcpTransport::stop() {
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> elk(engine_mu_);
  for (auto& sh : shards_) {
    {
      std::lock_guard<std::mutex> lk(sh->mu);
      sh->cv.notify_all();
    }
    wake(*sh);
  }
  for (auto& sh : shards_) {
    if (sh->thread.joinable()) sh->thread.join();
  }
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    for (auto& [id, c] : sh->conns) ::close(c->fd);
    sh->conns.clear();
    if (sh->wakefd >= 0) {
      ::close(sh->wakefd);
      sh->wakefd = -1;
    }
    if (sh->epfd >= 0) {
      ::close(sh->epfd);
      sh->epfd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> tlk(timer_mu_);
    while (!timers_.empty()) timers_.pop();  // discarded, per the contract
  }
  running_.store(false, std::memory_order_release);
}

bool TcpTransport::after(double delay_s, std::function<void()> fn) {
  LDS_REQUIRE(fn != nullptr, "TcpTransport::after: null callback");
  if (stop_.load(std::memory_order_acquire) ||
      !running_.load(std::memory_order_acquire)) {
    return false;
  }
  const auto when =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(delay_s > 0 ? delay_s : 0));
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timers_.push(Timer{when, timer_seq_++, std::move(fn)});
  }
  if (!shards_.empty()) wake(*shards_[0]);  // re-derive the epoll timeout
  return true;
}

int TcpTransport::next_timer_delay_ms() {
  std::lock_guard<std::mutex> lk(timer_mu_);
  if (timers_.empty()) return INT_MAX;
  const auto now = std::chrono::steady_clock::now();
  const auto& top = timers_.top();
  if (top.when <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      top.when - now)
                      .count();
  return static_cast<int>(std::min<long long>(ms + 1, INT_MAX));
}

void TcpTransport::run_due_timers() {
  std::vector<std::function<void()>> due;
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    const auto now = std::chrono::steady_clock::now();
    while (!timers_.empty() && timers_.top().when <= now) {
      // priority_queue::top is const; the function object is moved out via
      // const_cast, which is safe because pop() follows immediately.
      due.push_back(std::move(const_cast<Timer&>(timers_.top()).fn));
      timers_.pop();
    }
  }
  for (auto& fn : due) fn();  // outside every lock: timers may call deliver()
}

void TcpTransport::wake(Shard& sh) {
  if (sh.wakefd < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(sh.wakefd, &one, sizeof one);
}

void TcpTransport::accept_ready() {
  Handler handler;
  {
    std::lock_guard<std::mutex> lk(engine_mu_);
    handler = accept_handler_;
  }
  while (true) {
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) break;  // EAGAIN: accepted everything pending
    set_nonblocking(cfd);
    set_nodelay(cfd);
    adopt_fd(cfd, handler);  // round-robins across shards by peer id
  }
}

void TcpTransport::shard_loop(std::size_t shard_index) {
  Shard& sh = *shards_[shard_index];
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.thread_id = std::this_thread::get_id();
  }
  struct Delivery {
    Handler handler;
    NodeId peer;
    MessagePtr msg;
  };
  std::vector<epoll_event> events(128);
  std::vector<std::pair<Handler, MessagePtr>> msgs;  // reused scratch
  std::vector<Delivery> delivered;                   // reused across ticks
  std::vector<NodeId> dropped;
  const bool timer_owner = shard_index == 0;
  while (!stop_.load(std::memory_order_acquire)) {
    int timeout = opt_.poll_interval_ms;
    if (timer_owner) timeout = std::min(timeout, next_timer_delay_ms());
    int n = ::epoll_wait(sh.epfd, events.data(),
                         static_cast<int>(events.size()), timeout);
    if (inject_poll_failure_.exchange(false, std::memory_order_acq_rel)) {
      n = -1;
      errno = EBADF;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      // epoll itself failed: this engine can no longer move anyone's
      // bytes.  Fail every connection through the disconnect handler
      // (silently stranding them would leave callers waiting forever) and
      // mark the transport stopped so listen()/connect() refuse it.
      fail_loop();
      return;
    }
    if (timer_owner) run_due_timers();
    delivered.clear();
    dropped.clear();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        std::uint64_t drainv = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(sh.wakefd, &drainv, sizeof drainv);
        continue;
      }
      if (tag == kListenTag) {
        accept_ready();
        continue;
      }
      const NodeId id = static_cast<NodeId>(static_cast<std::uint32_t>(tag));
      std::lock_guard<std::mutex> lk(sh.mu);
      const auto it = sh.conns.find(id);
      if (it == sh.conns.end()) continue;  // closed between wait and here
      Conn& c = *it->second;
      bool alive = true;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        msgs.clear();
        alive = read_conn(id, c, &msgs);
        for (auto& [h, m] : msgs) {
          delivered.push_back({std::move(h), id, std::move(m)});
        }
      }
      if (alive && (events[i].events & EPOLLOUT)) alive = flush_conn(c);
      if (alive) {
        update_write_interest(sh, id, c);
        if (c.outq_bytes <= opt_.backlog_low_watermark) sh.cv.notify_all();
      } else {
        ::close(c.fd);
        sh.conns.erase(it);
        dropped.push_back(id);
        sh.cv.notify_all();  // backlog waiters on this peer: it is gone
      }
    }
    // Handlers run unlocked: they may call deliver()/close_peer() back in.
    for (Delivery& d : delivered) d.handler(d.peer, std::move(d.msg));
    if (on_disconnect_) {
      for (const NodeId id : dropped) on_disconnect_(id);
    }
  }
}

void TcpTransport::fail_loop() {
  stop_.store(true, std::memory_order_release);
  if (failed_.exchange(true, std::memory_order_acq_rel)) return;
  std::vector<NodeId> dropped;
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    for (auto& [id, c] : sh->conns) {
      ::close(c->fd);
      dropped.push_back(id);
    }
    sh->conns.clear();
    sh->cv.notify_all();
    wake(*sh);  // the other progress threads observe stop_ and exit
  }
  if (on_disconnect_) {
    for (const NodeId id : dropped) on_disconnect_(id);
  }
}

void TcpTransport::inject_poll_failure_for_testing() {
  inject_poll_failure_.store(true, std::memory_order_release);
  for (auto& sh : shards_) wake(*sh);
}

bool TcpTransport::read_conn(
    NodeId peer, Conn& c,
    std::vector<std::pair<Handler, MessagePtr>>* delivered) {
  (void)peer;
  const std::uint64_t zc_before = c.rx.zero_copy_bytes();
  const std::size_t before = delivered->size();
  bool eof = false;
  bool broken = false;
  std::vector<MessagePtr> out;
  while (true) {
    const auto [p, cap] = c.rx.recv_span();
    const ssize_t n = ::recv(c.fd, p, cap, 0);
    if (n > 0) {
      bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      c.rx.commit(static_cast<std::size_t>(n));
      if (const Status s = c.rx.drain(&out); !s.ok()) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        broken = true;  // hostile stream: disconnect
        break;
      }
      continue;
    }
    if (n == 0) {
      eof = true;  // deliver frames already decoded, then drop the conn
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    broken = true;
    break;
  }
  for (auto& m : out) delivered->emplace_back(c.handler, std::move(m));
  frames_received_.fetch_add(delivered->size() - before,
                             std::memory_order_relaxed);
  zero_copy_bytes_.fetch_add(c.rx.zero_copy_bytes() - zc_before,
                             std::memory_order_relaxed);
  return !eof && !broken;
}

std::size_t TcpTransport::gather_frames(const std::deque<codec::Frame>& q,
                                        std::size_t front_off,
                                        struct iovec* iov,
                                        std::size_t max_iov) {
  std::size_t n = 0;
  std::size_t off = front_off;  // nonzero only for the front frame
  for (const codec::Frame& f : q) {
    if (n >= max_iov) break;
    const std::size_t head = f.head.size();
    if (off < head) {
      iov[n].iov_base = const_cast<std::uint8_t*>(f.head.data() + off);
      iov[n].iov_len = head - off;
      ++n;
    }
    const std::size_t body_off = off > head ? off - head : 0;
    if (body_off < f.body.size() && n < max_iov) {
      iov[n].iov_base = const_cast<std::uint8_t*>(f.body.data() + body_off);
      iov[n].iov_len = f.body.size() - body_off;
      ++n;
    }
    off = 0;
  }
  return n;
}

namespace {
/// iovec spans per sendmsg call: enough to gather tens of queued frames
/// (head + body each) into one syscall, small enough to live on the stack.
constexpr std::size_t kSendIovMax = 64;
}  // namespace

bool TcpTransport::flush_conn(Conn& c) {
  while (!c.outq.empty()) {
    iovec iov[kSendIovMax];
    const std::size_t niov =
        gather_frames(c.outq, c.out_off, iov, kSendIovMax);
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    const ssize_t w = ::sendmsg(c.fd, &mh, MSG_NOSIGNAL);
    if (w > 0) {
      bytes_sent_.fetch_add(static_cast<std::uint64_t>(w),
                            std::memory_order_relaxed);
      c.outq_bytes -= static_cast<std::size_t>(w);
      // Retire every frame the gather write fully covered; a partial tail
      // advances the front frame's offset.
      std::size_t rem = static_cast<std::size_t>(w);
      while (rem > 0) {
        const codec::Frame& f = c.outq.front();
        const std::size_t left = f.size() - c.out_off;
        if (rem < left) {
          c.out_off += rem;
          break;
        }
        rem -= left;
        c.out_off = 0;
        c.outq.pop_front();
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;  // the socket took bytes: try for more
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::size_t TcpTransport::backlog_bytes(NodeId peer) const {
  if (!running_.load(std::memory_order_acquire)) return 0;
  const Shard& sh = *shards_[static_cast<std::size_t>(peer) % shards_.size()];
  std::lock_guard<std::mutex> lk(sh.mu);
  const auto it = sh.conns.find(peer);
  return it == sh.conns.end() ? 0 : it->second->outq_bytes;
}

}  // namespace lds::net
