#include "net/cost.h"

namespace lds::net {

void CostTracker::record(LinkClass link, OpId op, std::uint64_t data_bytes,
                         std::uint64_t meta_bytes) {
  total_.add(data_bytes, meta_bytes);
  by_link_[static_cast<std::size_t>(link)].add(data_bytes, meta_bytes);
  if (op != kNoOp) by_op_[op].add(data_bytes, meta_bytes);
}

CostBucket CostTracker::by_op(OpId op) const {
  auto it = by_op_.find(op);
  return it == by_op_.end() ? CostBucket{} : it->second;
}

void CostTracker::reset() {
  total_ = {};
  by_link_.fill({});
  by_op_.clear();
}

}  // namespace lds::net
