#include "net/sim.h"

#include <utility>

namespace lds::net {

void Simulator::at(SimTime t, Fn fn) {
  LDS_REQUIRE(t >= now_, "Simulator::at: cannot schedule in the past");
  LDS_REQUIRE(fn != nullptr, "Simulator::at: null event");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately afterwards.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ev.fn();
  ++executed_;
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime t_end) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().t <= t_end) {
    step();
    ++n;
  }
  if (now_ < t_end) now_ = t_end;
  return n;
}

}  // namespace lds::net
