// The wire format: every protocol message has ONE exact binary encoding.
//
// Until this layer existed the cost model (paper, Section II-d) charged each
// message an *estimated* meta-data constant and the system could only run
// in-process (payloads were shared_ptr handles).  The codec fixes both: it
// defines a flat, length-prefixed frame for every message of the LDS, ABD and
// CAS protocols (plus the heartbeat micro-protocol and the store RPC family),
// so that
//
//   * meta_bytes() is the exact encoded size minus the data payload — the
//     recorded communication costs are measured on-wire bytes, and
//   * a real transport (net/transport.h TcpTransport) can move the same
//     messages between processes.
//
// Frame layout (all integers little-endian, fixed width):
//
//   offset  size  field
//   0       4     frame length N (bytes after this prefix; <= kMaxFrameBytes)
//   4       2     magic 0x4C53 ("LS")
//   6       1     wire version (kWireVersion; bumped on any layout change)
//   7       1     family (Family: Lds / Abd / Cas / Heartbeat / Store)
//   8       1     type id within the family (the variant index — frozen)
//   9       4     ObjectId
//   13      8     OpId
//   21      4     payload length P (bytes of trailing Value payload; 0 = none)
//   25      ...   fixed body fields (tags, counters, flags), then exactly P
//                 trailing payload bytes closing the frame
//
// Since v2 the payload length lives in the fixed header (not as a u32 glued
// to the body fields): a streaming receiver knows the payload extent after
// kFrameOverheadBytes bytes and can recv a large payload straight into its
// own exact-size buffer — zero-copy on BOTH sides of the wire.
//
// Encoding is zero-copy for `Value` payloads: encode() returns a Frame whose
// `head` holds the prefix + header + fixed fields, and whose `body` is a
// shared handle onto the value buffer — a transport writes the two spans
// back to back without ever copying the value.  decode_with_payload() is the
// receive-side mirror: the transport hands the payload bytes in as a Value
// it recv'd directly, and the decoder installs the handle instead of copying.
//
// Versioning rules: the header is frozen; unknown versions, families and
// type ids are rejected with Status::InvalidArgument (decode never crashes
// on hostile input).  New message types append new type ids; removed types
// leave their id unused; any change to an existing body layout bumps
// kWireVersion.
#pragma once

#include <cstring>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "net/network.h"

namespace lds::net::codec {

inline constexpr std::uint16_t kMagic = 0x4C53;  // "LS"
inline constexpr std::uint8_t kWireVersion = 2;
/// Bytes of the u32 frame-length prefix.
inline constexpr std::size_t kLenPrefixBytes = 4;
/// Fixed header after the prefix: magic, version, family, type, obj, op,
/// payload length.
inline constexpr std::size_t kHeaderBytes = 2 + 1 + 1 + 1 + 4 + 8 + 4;
/// Every frame costs this much before its body fields.
inline constexpr std::size_t kFrameOverheadBytes =
    kLenPrefixBytes + kHeaderBytes;
/// Wire size of a Tag (u64 z + i32 w).
inline constexpr std::size_t kTagWireBytes = 12;
/// Hard ceiling on one frame: decode rejects anything larger as hostile.
inline constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;

/// Protocol family carried in the frame header.  Lds/Abd/Cas/Heartbeat are
/// built in; Store is registered by the store RPC layer (store/remote.h),
/// Member by the membership fabric (member/wire.h).
enum class Family : std::uint8_t {
  Lds = 0,
  Abd = 1,
  Cas = 2,
  Heartbeat = 3,
  Store = 4,
  Member = 5,
};
inline constexpr std::size_t kMaxFamilies = 8;

/// Visitor aggregate for std::visit over message body variants (shared by
/// every family codec implementation).
template <class... Ts>
struct overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
overloaded(Ts...) -> overloaded<Ts...>;

/// The decoder's rejection vocabulary: a truncated field inside a frame.
inline Status truncated_frame(const std::string& what) {
  return Status::InvalidArgument("truncated frame: " + what);
}

// ---- primitive writers / readers -------------------------------------------

/// Append-only little-endian byte builder for frame heads and body fields.
class Writer {
 public:
  explicit Writer(std::size_t reserve = 64) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void tag(const Tag& t) {
    u64(t.z);
    i32(t.w);
  }
  /// u32 length + raw bytes (strings, coded elements, helper data).  A blob
  /// beyond u32 range cannot be framed — that is a programming error (the
  /// frame cap kMaxFrameBytes rejects hostile sizes far earlier).
  void blob(const std::uint8_t* data, std::size_t len) {
    LDS_REQUIRE(len <= 0xffffffffu, "codec::Writer: blob exceeds u32 length");
    u32(static_cast<std::uint32_t>(len));
    append(data, len);
  }
  void blob(const Bytes& b) { blob(b.data(), b.size()); }
  void blob(const std::string& s) {
    blob(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  void append(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  std::size_t size() const { return buf_.size(); }
  /// Patch a previously written u32 (the frame-length prefix).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    std::memcpy(buf_.data() + offset, &v, 4);
  }
  Bytes take() && { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);  // little-endian hosts only (x86/arm)
  }

  Bytes buf_;
};

/// Bounds-checked little-endian reader; every getter returns false instead
/// of reading past the end, so decoders never crash on truncated frames.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : cur_(data), end_(data + len) {}

  bool u8(std::uint8_t* v) { return raw(v, 1); }
  bool u16(std::uint16_t* v) { return raw(v, 2); }
  bool u32(std::uint32_t* v) { return raw(v, 4); }
  bool u64(std::uint64_t* v) { return raw(v, 8); }
  bool i32(std::int32_t* v) { return raw(v, 4); }
  bool tag(Tag* t) { return u64(&t->z) && i32(&t->w); }
  bool blob(Bytes* out) {
    std::uint32_t len = 0;
    if (!u32(&len) || len > remaining()) return false;
    out->assign(cur_, cur_ + len);
    cur_ += len;
    return true;
  }
  bool blob(std::string* out) {
    std::uint32_t len = 0;
    if (!u32(&len) || len > remaining()) return false;
    out->assign(reinterpret_cast<const char*>(cur_), len);
    cur_ += len;
    return true;
  }
  /// Pop the frame's out-of-band payload (header field P names its extent;
  /// the generic decoder installs it via set_payload before decode_body runs).
  /// False when the frame carried no payload region at all.
  bool value(Value* out) {
    if (!payload_set_) return false;
    *out = std::move(payload_);
    payload_ = Value{};
    payload_set_ = false;
    return true;
  }

  /// Install the frame's payload for the next value() call.  Called once by
  /// the generic decoder (copying path) or decode_with_payload (zero-copy).
  void set_payload(Value v) {
    payload_ = std::move(v);
    payload_set_ = true;
  }
  /// True while an installed payload has not been popped by value().
  bool payload_pending() const { return payload_set_; }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - cur_); }
  bool exhausted() const { return cur_ == end_; }

 private:
  bool raw(void* p, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(p, cur_, n);
    cur_ += n;
    return true;
  }

  const std::uint8_t* cur_;
  const std::uint8_t* end_;
  Value payload_;
  bool payload_set_ = false;
};

// ---- frames -----------------------------------------------------------------

/// One encoded frame, split so the trailing value payload stays zero-copy:
/// `head` is the length prefix + header (which names the payload length) +
/// fixed fields; `body` shares the value buffer.
struct Frame {
  Bytes head;
  Value body;

  std::size_t size() const { return head.size() + body.size(); }
  /// Contiguous copy (tests, single-buffer transports).
  Bytes to_bytes() const {
    Bytes out;
    out.reserve(size());
    out.insert(out.end(), head.begin(), head.end());
    out.insert(out.end(), body.begin(), body.end());
    return out;
  }
};

// ---- per-family codec registry ----------------------------------------------

/// Frame fields a family's encoder fills in (the codec writes the header and
/// the trailing payload length itself).
struct WireInfo {
  std::uint8_t type = 0;
  ObjectId obj = 0;
  OpId op = kNoOp;
  bool has_body = false;  ///< a trailing length-prefixed payload follows
  Value body;             ///< zero-copy payload handle (when has_body)
};

/// One protocol family's encoder/decoder.  Implementations are stateless
/// singletons with static storage duration.
class FamilyCodec {
 public:
  virtual ~FamilyCodec() = default;
  virtual const char* name() const = 0;
  /// True when `msg` belongs to this family: append the fixed body fields to
  /// `w` and fill `info`.  False = not mine, try the next family.
  virtual bool encode_body(const Payload& msg, Writer& w,
                           WireInfo* info) const = 0;
  /// Exact frame size of `msg` without materializing it; false = not mine.
  virtual bool size_of(const Payload& msg, std::uint64_t* size) const = 0;
  /// Rebuild a message from one frame (header already parsed and verified).
  /// Must consume the reader exactly; unknown `type` -> InvalidArgument.
  virtual Status decode_body(std::uint8_t type, ObjectId obj, OpId op,
                             Reader& r, MessagePtr* out) const = 0;
};

/// Register a family codec (idempotent for the same pointer).  The Lds, Abd,
/// Cas and Heartbeat families are built in; the store RPC layer registers
/// Family::Store from store/remote.cpp.  `impl` must have static lifetime.
void register_family(Family f, const FamilyCodec* impl);

// ---- encode / decode ---------------------------------------------------------

/// Encode any known protocol message.  Aborts (LDS_REQUIRE) on a payload no
/// registered family owns — an unencodable message is a programming error,
/// not an input error.
Frame encode(const Payload& msg);

/// Exact on-wire frame size (length prefix included) without encoding.
/// This is what meta_bytes() derives from: meta = encoded_size - data_bytes.
std::uint64_t encoded_size(const Payload& msg);

/// Decode ONE frame starting at `data` (the length prefix).  On success sets
/// `*out` (and `*consumed` to the full frame size when non-null).  Truncated,
/// oversized, bad-magic, unknown-version/family/type and malformed-body
/// frames all return Status::InvalidArgument and never crash.
Status decode(const std::uint8_t* data, std::size_t len, MessagePtr* out,
              std::size_t* consumed = nullptr);
Status decode(const Bytes& frame, MessagePtr* out);

/// Zero-copy receive path: decode a frame whose trailing payload was recv'd
/// out-of-band.  `head` spans the length prefix + header + fixed fields
/// (exactly `head_len = total - P` bytes); `payload` holds the P payload
/// bytes the transport already owns — the handle is installed, not copied.
/// Rejects head/payload splits that disagree with the header.
Status decode_with_payload(const std::uint8_t* head, std::size_t head_len,
                           Value payload, MessagePtr* out);

/// Stream-reassembly helper: with >= kLenPrefixBytes available, sets
/// `*total` to the full frame size and returns Ok (oversized prefixes are
/// rejected here, before a hostile peer can make us buffer 4 GiB).  With
/// fewer bytes available sets `*total` to 0 and returns Ok ("need more").
Status frame_length(const std::uint8_t* data, std::size_t len,
                    std::size_t* total);

/// Deeper reassembly probe: with >= kFrameOverheadBytes available, validates
/// magic / version / length sanity and splits the frame extent into
/// `*total` (full frame size) and `*payload` (trailing payload bytes).  A
/// streaming receiver uses this to recv the payload directly into its own
/// buffer.  With fewer bytes available sets both to 0 and returns Ok.
Status frame_layout(const std::uint8_t* data, std::size_t len,
                    std::size_t* total, std::size_t* payload);

}  // namespace lds::net::codec
