// Discrete-event simulator.
//
// The paper's model of computation is an asynchronous message-passing system
// with reliable point-to-point channels (Section II-a).  A discrete-event
// simulation realizes that model exactly: every message delivery and every
// timer is an event; an execution is the sequence of events ordered by
// (time, insertion order), which makes runs deterministic for a fixed seed.
// Asynchrony is modelled by randomized per-message latencies (see latency.h);
// an adversary is approximated by exploring many seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.h"

namespace lds::net {

/// Simulated time.  Unit-free; the latency models define the scale (we use
/// "1.0 == tau1" in most benches).
using SimTime = double;

class Simulator {
 public:
  using Fn = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now).
  void at(SimTime t, Fn fn);

  /// Schedule `fn` to run `delay` time units from now.
  void after(SimTime delay, Fn fn) { at(now_ + delay, std::move(fn)); }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Run the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run events with time <= t_end (or until drained); advances now() to
  /// t_end if the queue drains earlier.  Returns events executed.
  std::size_t run_until(SimTime t_end);

  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;  // FIFO among same-time events
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace lds::net
