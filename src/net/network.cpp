#include "net/network.h"

#include "net/transport.h"

namespace lds::net {

Node::Node(Network& net, NodeId id, Role role)
    : net_(net), id_(id), role_(role) {
  net_.attach(this);
}

Node::~Node() { net_.detach(id_); }

void Node::send(NodeId to, MessagePtr msg) {
  if (crashed_) return;  // a crashed process executes no further steps
  net_.send(id_, role_, to, std::move(msg));
}

Network::Network(Simulator& sim, std::unique_ptr<LatencyModel> latency,
                 std::uint64_t seed)
    : sim_(sim),
      latency_(std::move(latency)),
      transport_(std::make_unique<InProcTransport>(*this)),
      rng_(seed) {
  LDS_REQUIRE(latency_ != nullptr, "Network: null latency model");
}

Network::~Network() = default;

void Network::set_transport(std::unique_ptr<Transport> t) {
  LDS_REQUIRE(t != nullptr, "Network::set_transport: null transport");
  transport_ = std::move(t);
}

Network::Network(Engine& engine, std::size_t lane,
                 std::unique_ptr<LatencyModel> latency, std::uint64_t seed)
    : Network(engine.lane_sim(lane), std::move(latency), seed) {}

void Network::attach(Node* node) {
  LDS_REQUIRE(node != nullptr, "Network::attach: null node");
  auto [it, inserted] = nodes_.emplace(node->id(), node);
  // Id reuse (crash-and-replace, see LdsCluster::replace_l2) requires the
  // old instance to detach before the replacement attaches; attaching two
  // live nodes under one id would silently misroute messages.
  LDS_REQUIRE(inserted, "Network::attach: node id already attached");
  roles_[node->id()] = node->role();
}

void Network::detach(NodeId id) { nodes_.erase(id); }

void Network::send(NodeId from, Role from_role, NodeId to, MessagePtr msg) {
  LDS_REQUIRE(msg != nullptr, "Network::send: null message");
  ++messages_sent_;

  Role to_role = Role::Other;
  if (auto it = roles_.find(to); it != roles_.end()) to_role = it->second;
  const LinkClass link = classify_link(from_role, to_role);
  costs_.record(link, msg->op(), msg->data_bytes(), msg->meta_bytes());

  const SimTime delay = latency_->sample(link, rng_);
  transport_->deliver(from, to, std::move(msg), delay);
}

void Network::deliver_local(NodeId from, NodeId to, MessagePtr msg,
                            SimTime delay) {
  sim_.after(delay, [this, from, to, msg = std::move(msg)]() {
    Node* dest = find(to);
    if (dest == nullptr || dest->crashed()) return;  // reliable-iff-alive
    if (observer_) observer_(from, to, *msg);
    if (dest->crashed()) return;  // observer may have crashed it
    dest->on_message(from, msg);
  });
}

void Network::crash(NodeId id) {
  if (Node* n = find(id)) n->crash();
}

Node* Network::find(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second;
}

}  // namespace lds::net
