// Pooled, zero-copy frame reassembly for streaming transports.
//
// The old TcpTransport receive path paid three per-frame costs: recv into a
// stack buffer, append into a growing `inbuf` vector (allocation + copy),
// and an erase-front memmove after every carve.  This layer removes all
// three, LCI-packet-pool style:
//
//   * BufferPool — fixed-size recv blocks recycled across connections, so a
//     steady-state connection performs ZERO allocations on the receive path
//     for frames that fit one block.
//   * FrameReassembler — recv()s straight into the pooled block at a write
//     offset (no intermediate copy), carves complete frames in place at a
//     read offset (no erase-front), and for frames whose header announces a
//     payload of >= Options::zero_copy_threshold bytes switches to PAYLOAD
//     STREAMING: the remaining payload is recv'd directly into an exact-size
//     buffer that becomes the message's `Value` via
//     codec::decode_with_payload — large values cross the socket into the
//     store with no reassembly copy at all (the wire-v2 header makes the
//     payload extent known after kFrameOverheadBytes bytes).
//
// Single-threaded by design: each instance belongs to one connection, which
// belongs to one progress-engine shard (see net/transport.h).  The pool is
// likewise per-shard and is only touched under the shard's lock.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "net/codec.h"

namespace lds::net {

/// Recycles fixed-capacity recv blocks.  acquire() reuses a released block
/// when one is retained, so steady-state connection churn stops allocating.
class BufferPool {
 public:
  BufferPool(std::size_t block_bytes, std::size_t max_retained)
      : block_bytes_(block_bytes), max_retained_(max_retained) {}

  std::size_t block_bytes() const { return block_bytes_; }

  /// A block of exactly block_bytes() (size, not just capacity).
  Bytes acquire() {
    if (!free_.empty()) {
      Bytes b = std::move(free_.back());
      free_.pop_back();
      ++reuses_;
      return b;
    }
    ++allocations_;
    return Bytes(block_bytes_);
  }

  /// Return a block.  Oversized blocks (grown for a jumbo frame) and blocks
  /// beyond the retention cap are dropped — the pool's footprint is bounded
  /// by max_retained * block_bytes.
  void release(Bytes b) {
    if (b.size() != block_bytes_ || free_.size() >= max_retained_) return;
    free_.push_back(std::move(b));
  }

  std::uint64_t allocations() const { return allocations_; }
  std::uint64_t reuses() const { return reuses_; }

 private:
  std::size_t block_bytes_;
  std::size_t max_retained_;
  std::vector<Bytes> free_;
  std::uint64_t allocations_ = 0;
  std::uint64_t reuses_ = 0;
};

/// Streaming frame reassembly over a pooled block, with large-payload
/// zero-copy streaming.  Usage per readiness event:
///
///   while (true) {
///     auto [p, cap] = rx.recv_span();
///     ssize_t n = recv(fd, p, cap, 0);
///     if (n <= 0) break;                  // EAGAIN / EOF / error
///     rx.commit(n);
///     if (!rx.drain(&msgs).ok()) { /* hostile peer: disconnect */ }
///   }
class FrameReassembler {
 public:
  struct Options {
    /// Frames larger than this are hostile (drain returns InvalidArgument).
    std::size_t max_frame_bytes = codec::kMaxFrameBytes;
    /// Payloads at least this large are recv'd straight into their own
    /// exact-size Value buffer instead of through the block.
    std::size_t zero_copy_threshold = 4096;
  };

  /// `pool` must outlive the reassembler; null = private blocks (tests).
  FrameReassembler(BufferPool* pool, Options opt);
  ~FrameReassembler();
  FrameReassembler(const FrameReassembler&) = delete;
  FrameReassembler& operator=(const FrameReassembler&) = delete;

  /// Writable destination for the next recv: block tail, or the payload
  /// buffer while streaming one.  Never empty.
  std::pair<std::uint8_t*, std::size_t> recv_span();
  /// Account `n` bytes written into the last recv_span().
  void commit(std::size_t n);
  /// Carve every complete frame into `*out` (decoded messages, appended).
  /// InvalidArgument = hostile stream; the connection must be dropped.
  Status drain(std::vector<MessagePtr>* out);

  /// True when no partial frame is pending (EOF here is a clean close).
  bool idle() const { return phase_ == Phase::Head && rd_ == wr_; }

  std::uint64_t frames() const { return frames_; }
  /// Payload bytes that never touched the reassembly block.
  std::uint64_t zero_copy_bytes() const { return zero_copy_bytes_; }

 private:
  enum class Phase : std::uint8_t { Head, Payload };

  void ensure_block();
  /// Make `need` contiguous bytes addressable at rd_ (compact, then grow).
  void ensure_room(std::size_t need);

  BufferPool* pool_;        ///< may be null (owned blocks only)
  BufferPool own_pool_;     ///< used when pool_ == nullptr
  Options opt_;
  Bytes buf_;               ///< pooled block; live bytes are [rd_, wr_)
  std::size_t rd_ = 0;
  std::size_t wr_ = 0;
  Phase phase_ = Phase::Head;
  // Payload-streaming state: buf_[rd_, rd_+head_len_) holds the complete
  // frame head; payload_ fills to payload_len_ then both decode zero-copy.
  Bytes payload_;
  std::size_t payload_len_ = 0;
  std::size_t payload_wr_ = 0;
  std::size_t head_len_ = 0;

  std::uint64_t frames_ = 0;
  std::uint64_t zero_copy_bytes_ = 0;
};

}  // namespace lds::net
