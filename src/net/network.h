// Nodes and the reliable point-to-point network.
//
// Model (paper, Section II-a): processes crash-fail; communication is via
// reliable point-to-point links - as long as the destination is non-faulty,
// any message placed in a channel is eventually delivered, even if the
// *sender* crashes after sending.  We realize this by scheduling the delivery
// event at send time; a delivery to a crashed node is silently dropped, and a
// crashed node never sends again.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/cost.h"
#include "net/engine.h"
#include "net/latency.h"
#include "net/sim.h"

namespace lds::net {

/// Abstract wire payload.  Protocol modules (lds, baselines) define concrete
/// payload types; the network only needs sizes for cost accounting and the
/// OpId for attribution.
class Payload {
 public:
  virtual ~Payload() = default;
  virtual std::uint64_t data_bytes() const = 0;
  virtual std::uint64_t meta_bytes() const = 0;
  virtual const char* type_name() const = 0;
  virtual OpId op() const { return kNoOp; }
};

using MessagePtr = std::shared_ptr<const Payload>;

class Network;
class Transport;  // net/transport.h: the message-delivery seam

/// A process.  Subclasses implement on_message(); the constructor registers
/// the node with the network and the destructor detaches it.
class Node {
 public:
  Node(Network& net, NodeId id, Role role);
  virtual ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  Role role() const { return role_; }
  bool crashed() const { return crashed_; }

  /// Crash-fail this node: it stops executing steps for the rest of the
  /// execution (messages to it are dropped, messages from it are suppressed).
  void crash() { crashed_ = true; }

  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;

 protected:
  /// Send helper for subclasses; no-op if this node has crashed.
  void send(NodeId to, MessagePtr msg);

  Network& net_;

 private:
  NodeId id_;
  Role role_;
  bool crashed_ = false;
};

class Network {
 public:
  /// A network lives on one engine lane: its clock, latency sampling RNG and
  /// cost tracker are all lane-local, so two networks on different lanes of
  /// a ParallelEngine never contend.
  Network(Engine& engine, std::size_t lane, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed = 1);
  /// Bare-simulator convenience (the SimEngine case with the engine left
  /// implicit); the simulator must outlive the network.
  Network(Simulator& sim, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed = 1);
  ~Network();  // out-of-line: Transport is only forward-declared here

  Simulator& sim() { return sim_; }
  CostTracker& costs() { return costs_; }
  const CostTracker& costs() const { return costs_; }
  Rng& rng() { return rng_; }

  /// Place a message in the (from -> to) channel.  Cost is accounted here,
  /// at send time, from the payload's exact wire sizes (net/codec.h); the
  /// transport then moves the message.  Unknown destinations are allowed
  /// (the message is dropped at delivery) so that nodes can be torn down
  /// mid-simulation in tests.
  void send(NodeId from, Role from_role, NodeId to, MessagePtr msg);

  /// The delivery seam (default: InProcTransport — zero-copy, deterministic;
  /// see net/transport.h).  Replace before any traffic flows.
  Transport& transport() { return *transport_; }
  void set_transport(std::unique_ptr<Transport> t);
  /// Deliver into a local node after `delay`: the InProcTransport path, and
  /// the entry point a remote transport uses when a frame arrives for a
  /// node attached here.  Must run on the network's lane.
  void deliver_local(NodeId from, NodeId to, MessagePtr msg, SimTime delay);

  /// Crash a node by id (no-op if unknown).
  void crash(NodeId id);

  Node* find(NodeId id) const;

  std::uint64_t messages_sent() const { return messages_sent_; }

  /// Test hook: observe every delivery just before the destination handles
  /// it.  Used by fault-injection tests to crash nodes at adversarial points.
  using DeliveryObserver =
      std::function<void(NodeId from, NodeId to, const Payload&)>;
  void set_delivery_observer(DeliveryObserver obs) {
    observer_ = std::move(obs);
  }

 private:
  friend class Node;
  void attach(Node* node);
  void detach(NodeId id);

  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<Transport> transport_;
  Rng rng_;
  CostTracker costs_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::unordered_map<NodeId, Role> roles_;  // survives detach, for links
  std::uint64_t messages_sent_ = 0;
  DeliveryObserver observer_;
};

}  // namespace lds::net
