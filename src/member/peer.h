// member::PeerHost — a non-coordinator `lds_served` process: it hosts the
// L1/L2 server ids the active membership view places on it, and nothing
// else (no clients, no store front-end).
//
// Lifecycle: start() brings up a single-lane ParallelEngine, a Network whose
// transport is the fabric's RemoteTransport, and the member listener, then
// dials the coordinator with Hello + JoinRequest{listen_port, claims}.  The
// coordinator answers with ViewPropose/ViewActivate; the fabric's
// view-change hook (on this host's lane) constructs and destroys ServerL1 /
// ServerL2 instances to match each new view's placement.  Freshly adopted L2
// servers start EMPTY — the coordinator follows up with SyncL2 listing the
// objects to regenerate, which runs the ordinary repair_object path against
// the surviving peers (the replace_l2 id-reuse flow, stretched across
// processes) and answers SyncDone.
//
// Catch-up: any signal that this process is behind (a StaleEpoch nack, an
// envelope under a newer epoch, a nacked activation) triggers a rate-limited
// ViewFetch to the coordinator, which replays the active view's
// propose + activate.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "lds/context.h"
#include "lds/server_l1.h"
#include "lds/server_l2.h"
#include "member/fabric.h"
#include "net/engine.h"
#include "net/network.h"

namespace lds::member {

class PeerHost {
 public:
  struct Options {
    /// The coordinator's member endpoint to join.
    Endpoint join;
    /// Server NodeIds this process asks to host (L2: 30000+i, L1: 20000+j).
    /// Advisory — the coordinator decides the placement; a restarted peer
    /// re-claims and is re-synced from scratch.
    std::vector<NodeId> claims;
    /// Member listen port (0 = ephemeral).
    std::uint16_t member_port = 0;
    /// Where this peer persists the active view (empty = RAM only).
    std::string view_dir;
    std::uint64_t seed = 1;
  };

  explicit PeerHost(Options opt);
  ~PeerHost();
  PeerHost(const PeerHost&) = delete;
  PeerHost& operator=(const PeerHost&) = delete;

  /// Listen, start the engine, and send the join request.  The view (and so
  /// the servers) arrive asynchronously from the coordinator.
  Status start();
  void stop();

  std::uint16_t member_port() const { return fabric_.port(); }
  Fabric& fabric() { return fabric_; }
  std::uint64_t epoch() const { return fabric_.epoch(); }

  /// Servers currently constructed here (for tests / status output).
  std::vector<std::size_t> local_l1() const;
  std::vector<std::size_t> local_l2() const;

 private:
  void apply_view(const View& prev, const View& next);  // on lane
  void on_control(NodeId conn, ProcessId from, const MemberBody& body);
  void handle_sync(NodeId conn, const SyncL2& sync);
  /// Sequentially repair `objects` on L2 server `index`, then reply
  /// SyncDone on `conn`.  Runs on the lane; retries (bounded) while the
  /// server is not yet constructed (activation may race the sync request).
  void run_sync(NodeId conn, SyncL2 sync, std::size_t next_obj,
                std::uint32_t repaired, std::uint32_t failed, int retries);
  void request_view(double now);

  Options opt_;
  Fabric fabric_;
  std::unique_ptr<net::ParallelEngine> engine_;
  std::unique_ptr<net::Network> net_;

  // Lane-confined (touched only from apply_view/run_sync on lane 0).
  std::shared_ptr<core::LdsContext> ctx_;
  std::vector<std::unique_ptr<core::ServerL1>> l1_;
  std::vector<std::unique_ptr<core::ServerL2>> l2_;

  std::atomic<bool> started_{false};
  mutable std::mutex fetch_mu_;
  double last_fetch_ = -1e18;
};

}  // namespace lds::member
