// member::Fabric — the per-process membership runtime: one TcpTransport on
// the member port, the active/pending View, the peer connection table, and
// the envelope pairing that moves protocol frames between processes.
//
// Remote delivery (the tentpole seam): install a RemoteTransport (below) on
// a Network via set_transport and every Network::send whose destination the
// active view places on ANOTHER process is routed here — encoded by the
// ordinary codec, prefixed with an epoch-tagged Envelope member frame, and
// written to the peer's connection.  Destinations placed locally fall back
// to Network::deliver_local with the sampled delay, byte-for-byte the
// in-process path.  On receive, the paired frames are re-joined and posted
// onto the bound Network's engine lane, so remote messages enter a node's
// on_message exactly like local ones.
//
// Loss model: an unreachable peer (dead, not yet joined, backlogged past its
// deadline) drops the frame — precisely Network's drop-at-delivery semantics
// for crashed nodes, which the LDS protocol already tolerates up to f1/f2
// per layer.  Reconnection is on-demand with a short backoff.
//
// Epoch fencing: every envelope names the sender's active epoch.  A receiver
// drops pairs under any OTHER epoch: older -> StaleEpoch nack (the sender
// should ViewFetch), newer -> the receiver itself is behind (its host is
// told through the control handler so it can ViewFetch).  Stale-view
// messages therefore never reach a server under the wrong configuration.
//
// Threading: control/view state is mutex-guarded; the transport handler runs
// on progress threads; forwarded protocol frames run on the bound engine
// lane.  View-change hooks run on the bound lane and MUST NOT send through
// the fabric synchronously (activation can wait on hook completion from a
// progress thread).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "member/view.h"
#include "member/wire.h"
#include "net/engine.h"
#include "net/network.h"
#include "net/transport.h"

namespace lds::member {

class Fabric {
 public:
  struct Options {
    /// Where the active view persists as VIEW (empty = not persisted).
    std::string view_dir;
    /// Seconds a failed dial suppresses re-dialing the same process.
    double reconnect_backoff_s = 0.1;
    net::TcpTransport::Options transport;
  };

  struct Stats {
    std::uint64_t envelopes_sent = 0;
    std::uint64_t envelopes_received = 0;
    std::uint64_t frames_forwarded = 0;  ///< protocol frames delivered here
    std::uint64_t remote_drops = 0;      ///< sends with no reachable peer
    std::uint64_t stale_drops = 0;       ///< pairs fenced: older epoch
    std::uint64_t future_drops = 0;      ///< pairs fenced: newer epoch
    std::uint64_t unpaired_drops = 0;    ///< protocol frame with no envelope
  };

  /// Runs on the bound engine lane when the active view flips; apply the
  /// placement diff (construct/destroy local servers) here.
  using ViewChangeHook =
      std::function<void(const View& prev, const View& next)>;
  /// Control frames the fabric does not consume itself (JoinRequest,
  /// ViewAck, ViewFetch, SyncL2, SyncDone, StaleEpoch) are handed to the
  /// host on a transport progress thread.  An Envelope delivered here means
  /// "a peer is at a NEWER epoch than us" — fetch the current view.
  using ControlHandler =
      std::function<void(NodeId conn, ProcessId from, const MemberBody& body)>;

  Fabric() : Fabric(Options{}) {}
  explicit Fabric(Options opt);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start accepting members.
  Status listen(std::uint16_t port);
  std::uint16_t port() const { return transport_.port(); }
  bool listening() const {
    return transport_.port() != 0 && !transport_.stopped();
  }
  void stop() { transport_.stop(); }

  /// This process's id in the view (0 = coordinator; joiners learn theirs
  /// from the first proposed view naming their endpoint).
  void set_self(ProcessId id) { self_.store(id, std::memory_order_release); }
  ProcessId self() const { return self_.load(std::memory_order_acquire); }

  /// Bind the protocol Network this process hosts.  Must happen before any
  /// protocol traffic flows (deployments bind between cluster construction
  /// and engine start).
  void bind(net::Network* net, net::Engine* engine, std::size_t lane);

  void set_view_change_hook(ViewChangeHook h);
  void set_control_handler(ControlHandler h);

  // ---- views ----------------------------------------------------------------

  std::uint64_t epoch() const;
  View view() const;
  std::optional<View> pending_view() const;

  /// Bootstrap only (active epoch still 0): install `v` without running the
  /// view-change hook — deployments construct their servers directly from
  /// this view.  Persists when a view_dir is configured.
  void set_initial_view(View v);

  /// Stage `v` as the pending view.  False when `v` is not newer than the
  /// active view or changes the deployment geometry.
  bool propose(View v);

  /// Flip the pending view with epoch `e` to active, persist it, and run
  /// the view-change hook on the bound lane.  Aborts (LDS_REQUIRE) when no
  /// matching pending view exists — activating an epoch that was never
  /// proposed is a coordinator logic error, not an input error (remote
  /// ViewActivate frames are validated gracefully before reaching here).
  /// `wait_for_hook` blocks until the lane ran the hook (bounded wait; see
  /// threading note above).
  void activate(std::uint64_t e, bool wait_for_hook = true);

  /// True when the active view places `node` on this process.
  bool local(NodeId node) const;

  // ---- peers ----------------------------------------------------------------

  /// Remember how to dial process `id` (idempotent; later views refresh it).
  void register_peer(ProcessId id, Endpoint ep);
  /// Bind an already-open connection to a process (e.g. the conn a
  /// JoinRequest arrived on becomes the joiner's connection).
  void note_conn(ProcessId id, NodeId conn);

  /// Send a control frame to a process, dialing on demand.  Unavailable
  /// when the process has no endpoint or the dial fails (backoff applies).
  Status send_control(ProcessId to, MemberBody body);
  /// Reply on a specific connection (progress-thread handlers).
  void send_control_conn(NodeId conn, MemberBody body);

  // ---- remote protocol delivery (RemoteTransport calls this) -----------------

  void send_remote(NodeId from, NodeId to, net::MessagePtr msg);

  /// Coordinator quiesce step: wait until every peer connection's send
  /// backlog drained (all proposed-epoch traffic is on the peer's side of
  /// the wire).  False on timeout.
  bool quiesce_sends(double timeout_s);

  Stats stats() const;
  net::TcpTransport& transport() { return transport_; }

 private:
  struct Peer {
    Endpoint ep;
    NodeId conn = kNoNode;
    double last_dial_fail = -1e18;  ///< steady-clock seconds
  };
  struct RxState {
    Envelope env;
    bool has_envelope = false;
    bool drop_next = false;  ///< fence the paired protocol frame
  };

  void on_frame(NodeId conn, net::MessagePtr msg);
  void on_disconnect(NodeId conn);
  void handle_envelope(NodeId conn, const Envelope& env);
  void handle_protocol(NodeId conn, net::MessagePtr msg);
  void handle_view_propose(NodeId conn, const ViewPropose& p);
  void handle_view_activate(NodeId conn, const ViewActivate& a);
  /// mu_ must NOT be held.  Returns kNoNode on failure.
  NodeId ensure_conn(ProcessId p);
  ProcessId process_of_conn(NodeId conn) const;
  /// Run the view-change hook for prev -> next on the bound lane.
  void run_hook(View prev, View next, bool wait);

  Options opt_;
  net::TcpTransport transport_;
  std::atomic<ProcessId> self_{kCoordinatorProcess};

  mutable std::mutex mu_;
  View active_;                   ///< epoch 0 until a view is installed
  std::optional<View> pending_;
  std::unordered_map<ProcessId, Peer> peers_;
  std::unordered_map<NodeId, ProcessId> conn_to_process_;
  std::unordered_map<NodeId, RxState> rx_;
  ViewChangeHook view_hook_;
  ControlHandler control_;
  net::Network* net_ = nullptr;
  net::Engine* engine_ = nullptr;
  std::size_t lane_ = 0;

  std::mutex dial_mu_;  ///< serializes outbound dials (blocking connect)
  std::mutex send_mu_;  ///< keeps envelope+frame pairs contiguous per conn

  std::atomic<std::uint64_t> envelopes_sent_{0}, envelopes_received_{0};
  std::atomic<std::uint64_t> frames_forwarded_{0}, remote_drops_{0};
  std::atomic<std::uint64_t> stale_drops_{0}, future_drops_{0};
  std::atomic<std::uint64_t> unpaired_drops_{0};
};

/// The Network transport that makes one LdsCluster span processes: local
/// destinations take the ordinary in-process path (sampled delay intact);
/// destinations the view places elsewhere ride the fabric.
class RemoteTransport final : public net::Transport {
 public:
  RemoteTransport(Fabric& fabric, net::Network& net)
      : fabric_(fabric), net_(net) {}

  const char* name() const override { return "member-remote"; }
  bool deterministic() const override { return false; }
  void deliver(NodeId from, NodeId to, net::MessagePtr msg,
               net::SimTime delay) override {
    if (fabric_.local(to)) {
      net_.deliver_local(from, to, std::move(msg), delay);
    } else {
      fabric_.send_remote(from, to, std::move(msg));
    }
  }

 private:
  Fabric& fabric_;
  net::Network& net_;
};

}  // namespace lds::member
