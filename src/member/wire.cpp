#include "member/wire.h"

#include "common/assert.h"

namespace lds::member {

namespace {

using net::codec::Family;
using net::codec::FamilyCodec;
using net::codec::kFrameOverheadBytes;
using net::codec::overloaded;
using net::codec::Reader;
using net::codec::WireInfo;
using net::codec::Writer;

Status truncated(const std::string& what) {
  return net::codec::truncated_frame(what);
}

/// Wire layouts (after the generic header; member frames carry no payload):
///   0 Hello        u32 process | u64 epoch | u16 port
///   1 Envelope     u64 epoch | i32 from | i32 to
///   2 StaleEpoch   u64 epoch
///   3 JoinRequest  u16 port | u32 count | count x i32 node
///   4 ViewPropose  view-blob
///   5 ViewAck      u64 epoch | u8 ok
///   6 ViewActivate u64 epoch
///   7 ViewFetch    (empty)
///   8 SyncL2       u64 epoch | u32 index | u32 count | count x u32 obj
///   9 SyncDone     u64 epoch | u32 index | u32 repaired | u32 failed
class MemberCodec final : public FamilyCodec {
 public:
  const char* name() const override { return "member"; }

  bool encode_body(const net::Payload& msg, Writer& w,
                   WireInfo* info) const override {
    const auto* m = dynamic_cast<const MemberMessage*>(&msg);
    if (m == nullptr) return false;
    info->type = static_cast<std::uint8_t>(m->body().index());
    std::visit(
        overloaded{
            [&](const Hello& b) {
              w.u32(b.process);
              w.u64(b.epoch);
              w.u16(b.listen_port);
            },
            [&](const Envelope& b) {
              w.u64(b.epoch);
              w.i32(b.from);
              w.i32(b.to);
            },
            [&](const StaleEpoch& b) { w.u64(b.epoch); },
            [&](const JoinRequest& b) {
              w.u16(b.listen_port);
              w.u32(static_cast<std::uint32_t>(b.claims.size()));
              for (const NodeId id : b.claims) w.i32(id);
            },
            [&](const ViewPropose& b) { w.blob(b.view); },
            [&](const ViewAck& b) {
              w.u64(b.epoch);
              w.u8(b.ok ? 1 : 0);
            },
            [&](const ViewActivate& b) { w.u64(b.epoch); },
            [&](const ViewFetch&) {},
            [&](const SyncL2& b) {
              w.u64(b.epoch);
              w.u32(b.l2_index);
              w.u32(static_cast<std::uint32_t>(b.objects.size()));
              for (const ObjectId o : b.objects) w.u32(o);
            },
            [&](const SyncDone& b) {
              w.u64(b.epoch);
              w.u32(b.l2_index);
              w.u32(b.repaired);
              w.u32(b.failed);
            },
        },
        m->body());
    return true;
  }

  bool size_of(const net::Payload& msg, std::uint64_t* size) const override {
    const auto* m = dynamic_cast<const MemberMessage*>(&msg);
    if (m == nullptr) return false;
    constexpr std::uint64_t kBase = kFrameOverheadBytes;
    *size = std::visit(
        overloaded{
            [](const Hello&) -> std::uint64_t { return kBase + 4 + 8 + 2; },
            [](const Envelope&) -> std::uint64_t { return kBase + 8 + 4 + 4; },
            [](const StaleEpoch&) -> std::uint64_t { return kBase + 8; },
            [](const JoinRequest& b) -> std::uint64_t {
              return kBase + 2 + 4 + 4 * b.claims.size();
            },
            [](const ViewPropose& b) -> std::uint64_t {
              return kBase + 4 + b.view.size();
            },
            [](const ViewAck&) -> std::uint64_t { return kBase + 8 + 1; },
            [](const ViewActivate&) -> std::uint64_t { return kBase + 8; },
            [](const ViewFetch&) -> std::uint64_t { return kBase; },
            [](const SyncL2& b) -> std::uint64_t {
              return kBase + 8 + 4 + 4 + 4 * b.objects.size();
            },
            [](const SyncDone&) -> std::uint64_t {
              return kBase + 8 + 4 + 4 + 4;
            },
        },
        m->body());
    return true;
  }

  Status decode_body(std::uint8_t type, ObjectId obj, OpId op, Reader& r,
                     net::MessagePtr* out) const override {
    (void)obj;
    (void)op;
    MemberBody body;
    switch (type) {
      case 0: {
        Hello b;
        if (!r.u32(&b.process) || !r.u64(&b.epoch) || !r.u16(&b.listen_port)) {
          return truncated("Hello");
        }
        body = b;
        break;
      }
      case 1: {
        Envelope b;
        if (!r.u64(&b.epoch) || !r.i32(&b.from) || !r.i32(&b.to)) {
          return truncated("Envelope");
        }
        body = b;
        break;
      }
      case 2: {
        StaleEpoch b;
        if (!r.u64(&b.epoch)) return truncated("StaleEpoch");
        body = b;
        break;
      }
      case 3: {
        JoinRequest b;
        std::uint32_t count = 0;
        if (!r.u16(&b.listen_port) || !r.u32(&count)) {
          return truncated("JoinRequest");
        }
        if (count > r.remaining() / 4) return truncated("JoinRequest.claims");
        b.claims.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          NodeId id = kNoNode;
          if (!r.i32(&id)) return truncated("JoinRequest.claim");
          b.claims.push_back(id);
        }
        body = std::move(b);
        break;
      }
      case 4: {
        ViewPropose b;
        if (!r.blob(&b.view)) return truncated("ViewPropose.view");
        body = std::move(b);
        break;
      }
      case 5: {
        ViewAck b;
        std::uint8_t ok = 0;
        if (!r.u64(&b.epoch) || !r.u8(&ok)) return truncated("ViewAck");
        b.ok = ok != 0;
        body = b;
        break;
      }
      case 6: {
        ViewActivate b;
        if (!r.u64(&b.epoch)) return truncated("ViewActivate");
        body = b;
        break;
      }
      case 7:
        body = ViewFetch{};
        break;
      case 8: {
        SyncL2 b;
        std::uint32_t count = 0;
        if (!r.u64(&b.epoch) || !r.u32(&b.l2_index) || !r.u32(&count)) {
          return truncated("SyncL2");
        }
        if (count > r.remaining() / 4) return truncated("SyncL2.objects");
        b.objects.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          ObjectId o = 0;
          if (!r.u32(&o)) return truncated("SyncL2.object");
          b.objects.push_back(o);
        }
        body = std::move(b);
        break;
      }
      case 9: {
        SyncDone b;
        if (!r.u64(&b.epoch) || !r.u32(&b.l2_index) || !r.u32(&b.repaired) ||
            !r.u32(&b.failed)) {
          return truncated("SyncDone");
        }
        body = b;
        break;
      }
      default:
        return Status::InvalidArgument("unknown member type id " +
                                       std::to_string(type));
    }
    if (!r.exhausted()) return truncated("member frame: trailing bytes");
    *out = MemberMessage::make(std::move(body));
    return Status::Ok();
  }
};

}  // namespace

std::uint64_t MemberMessage::meta_bytes() const {
  return net::codec::encoded_size(*this);
}

const char* MemberMessage::type_name() const {
  return std::visit(
      [](const auto& b) -> const char* {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, Hello>) return "MEMBER-HELLO";
        else if constexpr (std::is_same_v<T, Envelope>) return "MEMBER-ENV";
        else if constexpr (std::is_same_v<T, StaleEpoch>)
          return "MEMBER-STALE-EPOCH";
        else if constexpr (std::is_same_v<T, JoinRequest>)
          return "MEMBER-JOIN";
        else if constexpr (std::is_same_v<T, ViewPropose>)
          return "MEMBER-VIEW-PROPOSE";
        else if constexpr (std::is_same_v<T, ViewAck>) return "MEMBER-VIEW-ACK";
        else if constexpr (std::is_same_v<T, ViewActivate>)
          return "MEMBER-VIEW-ACTIVATE";
        else if constexpr (std::is_same_v<T, ViewFetch>)
          return "MEMBER-VIEW-FETCH";
        else if constexpr (std::is_same_v<T, SyncL2>) return "MEMBER-SYNC-L2";
        else return "MEMBER-SYNC-DONE";
      },
      body_);
}

void register_member_wire() {
  static const MemberCodec codec;
  static const bool once = [] {
    net::codec::register_family(Family::Member, &codec);
    return true;
  }();
  (void)once;
}

}  // namespace lds::member
