// The membership wire family (codec Family::Member): the control frames the
// member::Fabric exchanges between processes, plus the Envelope that carries
// every cross-process protocol frame.
//
// Remote protocol delivery works by PAIRING: for each LDS/ABD/CAS/heartbeat
// frame bound for a peer process, the fabric first sends an
// Envelope{epoch, from, to} member frame, then the UNMODIFIED inner protocol
// frame.  The inner frame stays byte-identical to its in-process encoding
// (same zero-copy body split, same measured cost), and the envelope carries
// what the inner header cannot: the epoch fence and the protocol-level
// from/to NodeIds.  The receiver applies a stashed envelope to the next
// non-member frame on that connection — member control frames in between
// pass through without consuming it — which is sound because a connection's
// frames are delivered sequentially on one progress thread.
//
// Epoch fencing: an envelope whose epoch differs from the receiver's active
// view is rejected — the paired protocol frame is dropped, and a StaleEpoch
// nack tells a behind peer to catch up via ViewFetch.  This is the "stale
// epoch rejection at every server" rule: a server never processes a protocol
// message sent under a view other than its own.
//
// View change (coordinator-driven, see member/coordinator.h):
//   ViewPropose(view) -> ViewAck(epoch)      propose to every member
//   [quiesce in-flight ops]                  coordinator-local
//   ViewActivate(epoch) -> ViewAck(epoch)    flip + fence, ack'd
//   SyncL2(epoch, index, objects) -> SyncDone state-sync via repair_object
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/types.h"
#include "member/view.h"
#include "net/codec.h"

namespace lds::member {

/// First frame on every outbound connection: who is dialing (kNoProcess for
/// a joining peer that has no id yet) and where the dialer can be dialed
/// back (its member listen port).
struct Hello {
  ProcessId process = kNoProcess;
  std::uint64_t epoch = 0;
  std::uint16_t listen_port = 0;
};
/// Precedes one cross-process protocol frame (see pairing rule above).
struct Envelope {
  std::uint64_t epoch = 0;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
};
/// Nack for an envelope under an old epoch: tells the sender the receiver's
/// active epoch so it can ViewFetch the current view.
struct StaleEpoch {
  std::uint64_t epoch = 0;
};
/// Peer -> coordinator: admit me, place `claims` (L2 node ids) on me.
struct JoinRequest {
  std::uint16_t listen_port = 0;
  std::vector<NodeId> claims;
};
struct ViewPropose {
  Bytes view;  ///< View::encode_bytes()
};
struct ViewAck {
  std::uint64_t epoch = 0;
  bool ok = true;
};
struct ViewActivate {
  std::uint64_t epoch = 0;
};
/// Ask the coordinator to resend the active view (propose + activate).
struct ViewFetch {};
/// Coordinator -> peer: rebuild L2 server `l2_index` from its quorum peers
/// (ServerL2::repair_object over the fabric) for each listed object.
struct SyncL2 {
  std::uint64_t epoch = 0;
  std::uint32_t l2_index = 0;
  std::vector<ObjectId> objects;
};
struct SyncDone {
  std::uint64_t epoch = 0;
  std::uint32_t l2_index = 0;
  std::uint32_t repaired = 0;
  std::uint32_t failed = 0;
};

/// Alternative order frozen: the wire codec uses the variant index as the
/// frame's type id.  Append, never reorder.
using MemberBody =
    std::variant<Hello, Envelope, StaleEpoch, JoinRequest, ViewPropose,
                 ViewAck, ViewActivate, ViewFetch, SyncL2, SyncDone>;

class MemberMessage final : public net::Payload {
 public:
  explicit MemberMessage(MemberBody body) : body_(std::move(body)) {}

  const MemberBody& body() const { return body_; }

  std::uint64_t data_bytes() const override { return 0; }  // all meta
  std::uint64_t meta_bytes() const override;               ///< exact, codec
  const char* type_name() const override;

  static net::MessagePtr make(MemberBody body) {
    return std::make_shared<MemberMessage>(std::move(body));
  }

 private:
  MemberBody body_;
};

/// Register Family::Member with the codec.  Idempotent, thread-safe; called
/// by Fabric construction (and by tests that feed MemberMessages directly).
void register_member_wire();

}  // namespace lds::member
