// member::Controller — the client-side handle for driving reconfiguration
// at runtime: a thin wrapper over a store::RemoteSession that speaks the
// RemoteReconfig admin frame (store/remote.h) to a head `lds_served`
// process.  Add/remove/replace compose from moves: joining a process is
// `lds_served --join` (the process asks for itself); moving an L2 into a
// process replaces the old incarnation (the id-reuse path); moving every L2
// off a process removes it from the data path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/remote.h"

namespace lds::member {

class Controller {
 public:
  /// The session must outlive the controller.
  explicit Controller(store::RemoteSession& session) : session_(session) {}

  /// The head's active membership epoch.
  Result<std::uint64_t> epoch(double deadline_s = 10.0);

  /// Move L2 servers `indices` to the member process at host:port (it must
  /// have joined already).  Blocks through quiesce + activate + state-sync;
  /// returns the resulting epoch.
  Result<std::uint64_t> move_l2(std::vector<std::uint32_t> indices,
                                const std::string& host, std::uint16_t port,
                                double deadline_s = 60.0);
  /// Move L2 servers back into the head process.
  Result<std::uint64_t> move_l2_home(std::vector<std::uint32_t> indices,
                                     double deadline_s = 60.0);

  /// Fire-and-forget move (reconfig churn under failure injection: the
  /// caller may SIGKILL a member while this is in flight).  `done` runs on
  /// the session's progress thread with the outcome.
  void async_move_l2(std::vector<std::uint32_t> indices,
                     const std::string& host, std::uint16_t port,
                     std::function<void(Status, std::uint64_t)> done,
                     double deadline_s = 60.0);

 private:
  Result<std::uint64_t> call(store::RemoteReconfig req, double deadline_s);

  store::RemoteSession& session_;
};

}  // namespace lds::member
