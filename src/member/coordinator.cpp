#include "member/coordinator.h"

#include <chrono>
#include <future>

#include "common/assert.h"
#include "lds/cluster.h"

namespace lds::member {

namespace {

bool valid_claim(const View& v, NodeId node) {
  if (node >= core::kL1IdBase && node < core::kL1IdBase + static_cast<NodeId>(v.n1)) {
    return true;
  }
  return node >= core::kL2IdBase &&
         node < core::kL2IdBase + static_cast<NodeId>(v.n2);
}

}  // namespace

Coordinator::Coordinator(Fabric& fabric, Hooks hooks, Timeouts timeouts)
    : fabric_(fabric), hooks_(std::move(hooks)), to_(timeouts) {
  fabric_.set_control_handler(
      [this](NodeId conn, ProcessId from, const MemberBody& body) {
        on_control(conn, from, body);
      });
  worker_ = std::thread([this] { worker(); });
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::stop() {
  std::deque<Op> dropped;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    dropped.swap(queue_);
  }
  cv_.notify_all();
  ack_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  for (Op& op : dropped) {
    if (op.done) op.done(Status::Unavailable("coordinator stopping"), 0);
  }
}

std::uint64_t Coordinator::changes_applied() const {
  std::lock_guard<std::mutex> lk(mu_);
  return changes_;
}

void Coordinator::move_l2(std::vector<std::uint32_t> indices, std::string host,
                          std::uint16_t port, MoveCallback done) {
  Op op;
  op.kind = Op::Kind::Move;
  op.indices = std::move(indices);
  op.host = std::move(host);
  op.port = port;
  op.done = std::move(done);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      if (op.done) op.done(Status::Unavailable("coordinator stopping"), 0);
      return;
    }
    queue_.push_back(std::move(op));
  }
  cv_.notify_all();
}

// ---- control intake (fabric progress threads) --------------------------------

void Coordinator::on_control(NodeId conn, ProcessId from,
                             const MemberBody& body) {
  if (const auto* join = std::get_if<JoinRequest>(&body)) {
    Op op;
    op.kind = Op::Kind::Join;
    op.conn = conn;
    op.listen_port = join->listen_port;
    op.claims = join->claims;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) return;
      queue_.push_back(std::move(op));
    }
    cv_.notify_all();
    return;
  }
  if (std::holds_alternative<ViewFetch>(body)) {
    Op op;
    op.kind = Op::Kind::Fetch;
    op.conn = conn;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) return;
      queue_.push_back(std::move(op));
    }
    cv_.notify_all();
    return;
  }
  if (const auto* ack = std::get_if<ViewAck>(&body)) {
    std::lock_guard<std::mutex> lk(ack_mu_);
    if (ack->epoch == ack_epoch_ && from != kNoProcess) {
      (ack->ok ? acked_ : nacked_).insert(from);
      ack_cv_.notify_all();
    }
    return;
  }
  if (const auto* done = std::get_if<SyncDone>(&body)) {
    std::lock_guard<std::mutex> lk(ack_mu_);
    sync_done_.push_back(*done);
    ack_cv_.notify_all();
    return;
  }
  // StaleEpoch / Envelope-catch-up signals target lagging peers, not the
  // coordinator (the authoritative epoch); nothing to do here.
}

// ---- worker ------------------------------------------------------------------

void Coordinator::worker() {
  for (;;) {
    Op op;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      op = std::move(queue_.front());
      queue_.pop_front();
    }
    switch (op.kind) {
      case Op::Kind::Join: run_join(std::move(op)); break;
      case Op::Kind::Move: run_move(std::move(op)); break;
      case Op::Kind::Fetch: run_fetch(std::move(op)); break;
    }
  }
}

ProcessId Coordinator::process_for_endpoint(const View& v,
                                            const std::string& host,
                                            std::uint16_t port) const {
  for (const auto& [pid, ep] : v.processes) {
    if (ep.port == port && (host.empty() || ep.host == host)) return pid;
  }
  return kNoProcess;
}

void Coordinator::run_join(Op op) {
  const View active = fabric_.view();
  const Endpoint ep{"127.0.0.1", op.listen_port};
  // Re-joining endpoint (a restarted peer) keeps its process id; otherwise
  // allocate the next one.  The coordinator itself is process 0.
  ProcessId pid = process_for_endpoint(active, ep.host, ep.port);
  if (pid == kNoProcess) {
    pid = 1;
    for (const auto& [p, unused] : active.processes) {
      pid = std::max(pid, p + 1);
    }
  }
  fabric_.register_peer(pid, ep);
  fabric_.note_conn(pid, op.conn);
  View next = active;
  ++next.epoch;
  next.processes[pid] = ep;
  for (const NodeId node : op.claims) {
    if (valid_claim(next, node)) next.placement[node] = pid;
  }
  if (const Status st = apply_change(next); !st.ok()) return;
  // A (re)joined process starts empty no matter what it hosted before, so
  // every claimed L2 resyncs unconditionally.
  for (const NodeId node : op.claims) {
    if (node >= core::kL2IdBase &&
        node < core::kL2IdBase + static_cast<NodeId>(next.n2)) {
      sync_l2(next, static_cast<std::uint32_t>(node - core::kL2IdBase));
    }
  }
}

void Coordinator::run_move(Op op) {
  const View active = fabric_.view();
  ProcessId target = fabric_.self();
  if (!op.host.empty()) {
    target = process_for_endpoint(active, op.host, op.port);
    if (target == kNoProcess) {
      if (op.done) {
        op.done(Status::InvalidArgument("no member process at " + op.host +
                                        ":" + std::to_string(op.port)),
                active.epoch);
      }
      return;
    }
  }
  for (const std::uint32_t idx : op.indices) {
    if (idx >= active.n2) {
      if (op.done) {
        op.done(Status::InvalidArgument("L2 index " + std::to_string(idx) +
                                        " out of range"),
                active.epoch);
      }
      return;
    }
  }
  View next = active;
  ++next.epoch;
  for (const std::uint32_t idx : op.indices) {
    const NodeId node = core::kL2IdBase + static_cast<NodeId>(idx);
    if (target == fabric_.self() && target == kCoordinatorProcess) {
      next.placement.erase(node);  // unlisted nodes live on the head
    } else {
      next.placement[node] = target;
    }
  }
  if (const Status st = apply_change(next); !st.ok()) {
    if (op.done) op.done(st, fabric_.epoch());
    return;
  }
  for (const std::uint32_t idx : op.indices) sync_l2(next, idx);
  if (op.done) op.done(Status::Ok(), next.epoch);
}

void Coordinator::run_fetch(Op op) {
  // Replay the active view to a lagging peer: an idempotent propose (acked
  // as such) followed by its activation.
  const View active = fabric_.view();
  if (active.epoch == 0) return;
  fabric_.send_control_conn(op.conn, ViewPropose{active.encode_bytes()});
  fabric_.send_control_conn(op.conn, ViewActivate{active.epoch});
}

// ---- the change protocol -----------------------------------------------------

Status Coordinator::apply_change(View next) {
  const std::uint64_t e = next.epoch;
  std::set<ProcessId> others;
  for (const auto& [pid, ep] : next.processes) {
    if (pid != fabric_.self()) others.insert(pid);
  }
  const Bytes encoded = next.encode_bytes();
  if (!fabric_.propose(std::move(next))) {
    return Status::InvalidArgument(
        "view rejected (not newer than active, or geometry change)");
  }
  begin_ack_wait(e);
  for (const ProcessId p : others) {
    (void)fabric_.send_control(p, ViewPropose{encoded});
  }
  // Dead peers time out; the change proceeds without them (they catch up via
  // ViewFetch when they return, and their servers count toward f1/f2 until
  // then).
  (void)wait_acks(e, others, to_.propose_ack_s);

  // Quiesce: no client op may straddle the epoch flip.  An op dispatched
  // under the old epoch whose quorum needs a server that moved could
  // otherwise wait forever on fenced frames.
  if (hooks_.pause) hooks_.pause();
  if (hooks_.drain) (void)hooks_.drain(to_.drain_s);
  (void)fabric_.quiesce_sends(to_.quiesce_s);

  begin_ack_wait(e);
  fabric_.activate(e, /*wait_for_hook=*/true);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++changes_;
  }
  for (const ProcessId p : others) {
    (void)fabric_.send_control(p, ViewActivate{e});
  }
  // Load-bearing for liveness: once a live peer acked activation it serves
  // the new epoch, so resumed traffic only ever loses the servers of
  // genuinely dead processes (bounded by the deployment's f1/f2 budget).
  (void)wait_acks(e, others, to_.activate_ack_s);
  if (hooks_.resume) hooks_.resume();
  return Status::Ok();
}

void Coordinator::sync_l2(const View& v, std::uint32_t index) {
  const NodeId node = core::kL2IdBase + static_cast<NodeId>(index);
  const ProcessId owner = v.process_of(node);
  if (owner == fabric_.self()) {
    if (!hooks_.repair_local) return;
    auto done = std::make_shared<std::promise<void>>();
    auto fut = done->get_future();
    hooks_.repair_local(index,
                        [done](std::uint32_t, std::uint32_t) mutable {
                          done->set_value();
                        });
    (void)fut.wait_for(std::chrono::duration<double>(to_.sync_s));
    return;
  }
  std::vector<ObjectId> objects;
  if (hooks_.objects) objects = hooks_.objects();
  if (!fabric_.send_control(owner, SyncL2{v.epoch, index, std::move(objects)})
           .ok()) {
    return;  // unreachable peer: it resyncs via ViewFetch + repair later
  }
  (void)wait_sync_done(v.epoch, index, to_.sync_s);
}

// ---- ack collection ----------------------------------------------------------

void Coordinator::begin_ack_wait(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lk(ack_mu_);
  ack_epoch_ = epoch;
  acked_.clear();
  nacked_.clear();
  sync_done_.clear();
}

std::set<ProcessId> Coordinator::wait_acks(std::uint64_t epoch,
                                           const std::set<ProcessId>& procs,
                                           double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::duration<double>(timeout_s));
  std::unique_lock<std::mutex> lk(ack_mu_);
  ack_cv_.wait_until(lk, deadline, [&] {
    if (ack_epoch_ != epoch) return true;  // superseded
    for (const ProcessId p : procs) {
      if (acked_.count(p) == 0 && nacked_.count(p) == 0) return false;
    }
    return true;
  });
  return acked_;
}

std::optional<SyncDone> Coordinator::wait_sync_done(std::uint64_t epoch,
                                                    std::uint32_t index,
                                                    double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::duration<double>(timeout_s));
  std::unique_lock<std::mutex> lk(ack_mu_);
  std::optional<SyncDone> found;
  ack_cv_.wait_until(lk, deadline, [&] {
    for (const SyncDone& d : sync_done_) {
      if (d.epoch == epoch && d.l2_index == index) {
        found = d;
        return true;
      }
    }
    return false;
  });
  return found;
}

}  // namespace lds::member
