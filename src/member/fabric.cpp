#include "member/fabric.h"

#include <chrono>
#include <future>
#include <thread>

#include "common/assert.h"

namespace lds::member {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Fabric::Fabric(Options opt) : opt_(std::move(opt)), transport_(opt_.transport) {
  register_member_wire();
  transport_.set_disconnect_handler([this](NodeId conn) { on_disconnect(conn); });
}

Fabric::~Fabric() { stop(); }

Status Fabric::listen(std::uint16_t port) {
  return transport_.listen(
      port, [this](NodeId conn, net::MessagePtr msg) { on_frame(conn, msg); });
}

void Fabric::bind(net::Network* net, net::Engine* engine, std::size_t lane) {
  std::lock_guard<std::mutex> lk(mu_);
  net_ = net;
  engine_ = engine;
  lane_ = lane;
}

void Fabric::set_view_change_hook(ViewChangeHook h) {
  std::lock_guard<std::mutex> lk(mu_);
  view_hook_ = std::move(h);
}

void Fabric::set_control_handler(ControlHandler h) {
  std::lock_guard<std::mutex> lk(mu_);
  control_ = std::move(h);
}

std::uint64_t Fabric::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_.epoch;
}

View Fabric::view() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_;
}

std::optional<View> Fabric::pending_view() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_;
}

void Fabric::set_initial_view(View v) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    LDS_REQUIRE(active_.epoch == 0,
                "Fabric::set_initial_view: a view is already active");
    LDS_REQUIRE(v.epoch > 0, "Fabric::set_initial_view: epoch must be > 0");
    active_ = std::move(v);
    for (const auto& [pid, ep] : active_.processes) {
      if (pid != self()) peers_[pid].ep = ep;
    }
    if (!opt_.view_dir.empty()) {
      const Status st = active_.save(opt_.view_dir);
      LDS_REQUIRE(st.ok(),
                  ("Fabric: persist view: " + std::string(st.message()))
                      .c_str());
    }
  }
}

bool Fabric::propose(View v) {
  std::lock_guard<std::mutex> lk(mu_);
  if (v.epoch <= active_.epoch) return false;
  if (active_.epoch > 0 && !active_.same_geometry(v)) return false;
  // A joiner has no process id until a view names its endpoint: claim the
  // entry matching our member port (loopback deployment, ports are unique).
  if (self() == kNoProcess) {
    for (const auto& [pid, ep] : v.processes) {
      if (ep.port == transport_.port()) set_self(pid);
    }
  }
  pending_ = std::move(v);
  return true;
}

void Fabric::activate(std::uint64_t e, bool wait_for_hook) {
  View prev, next;
  ViewChangeHook hook;
  {
    std::lock_guard<std::mutex> lk(mu_);
    LDS_REQUIRE(pending_.has_value() && pending_->epoch == e,
                "Fabric::activate: conflicting epoch activation "
                "(no matching proposed view)");
    prev = active_;
    active_ = std::move(*pending_);
    pending_.reset();
    next = active_;
    for (const auto& [pid, ep] : active_.processes) {
      if (pid != self()) peers_[pid].ep = ep;
    }
    hook = view_hook_;
    if (!opt_.view_dir.empty()) {
      const Status st = active_.save(opt_.view_dir);
      LDS_REQUIRE(st.ok(),
                  ("Fabric: persist view: " + std::string(st.message()))
                      .c_str());
    }
  }
  if (hook) run_hook(std::move(prev), std::move(next), wait_for_hook);
}

void Fabric::run_hook(View prev, View next, bool wait) {
  net::Engine* engine;
  std::size_t lane;
  ViewChangeHook hook;
  {
    std::lock_guard<std::mutex> lk(mu_);
    engine = engine_;
    lane = lane_;
    hook = view_hook_;
  }
  if (engine == nullptr || !hook) return;
  auto done = std::make_shared<std::promise<void>>();
  auto fut = done->get_future();
  engine->post(lane, [hook = std::move(hook), prev = std::move(prev),
                      next = std::move(next), done]() mutable {
    hook(prev, next);
    done->set_value();
  });
  if (wait) {
    // Bounded: a progress thread waiting here must never deadlock against a
    // lane blocked on that thread's own backlog drain (see header note).
    fut.wait_for(std::chrono::seconds(5));
  }
}

bool Fabric::local(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_.process_of(node) == self();
}

void Fabric::register_peer(ProcessId id, Endpoint ep) {
  std::lock_guard<std::mutex> lk(mu_);
  peers_[id].ep = std::move(ep);
}

void Fabric::note_conn(ProcessId id, NodeId conn) {
  std::lock_guard<std::mutex> lk(mu_);
  peers_[id].conn = conn;
  conn_to_process_[conn] = id;
}

ProcessId Fabric::process_of_conn(NodeId conn) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = conn_to_process_.find(conn);
  return it == conn_to_process_.end() ? kNoProcess : it->second;
}

NodeId Fabric::ensure_conn(ProcessId p) {
  Endpoint ep;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = peers_.find(p);
    if (it == peers_.end() || it->second.ep.port == 0) return kNoNode;
    if (it->second.conn != kNoNode) return it->second.conn;
    if (now_s() < it->second.last_dial_fail + opt_.reconnect_backoff_s) {
      return kNoNode;  // backoff window: treat the peer as down
    }
    ep = it->second.ep;
  }
  std::lock_guard<std::mutex> dial(dial_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = peers_.find(p);
    if (it != peers_.end() && it->second.conn != kNoNode) {
      return it->second.conn;  // another thread dialed while we waited
    }
  }
  NodeId conn = kNoNode;
  const Status st = transport_.connect(
      ep.host, ep.port,
      [this](NodeId c, net::MessagePtr msg) { on_frame(c, msg); }, &conn);
  std::uint64_t e;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!st.ok()) {
      peers_[p].last_dial_fail = now_s();
      return kNoNode;
    }
    peers_[p].conn = conn;
    peers_[p].last_dial_fail = -1e18;
    conn_to_process_[conn] = p;
    e = active_.epoch;
  }
  transport_.deliver(
      0, conn, MemberMessage::make(Hello{self(), e, transport_.port()}), 0);
  return conn;
}

Status Fabric::send_control(ProcessId to, MemberBody body) {
  const NodeId conn = ensure_conn(to);
  if (conn == kNoNode) {
    return Status::Unavailable("member: process " + std::to_string(to) +
                               " unreachable");
  }
  transport_.deliver(0, conn, MemberMessage::make(std::move(body)), 0);
  return Status::Ok();
}

void Fabric::send_control_conn(NodeId conn, MemberBody body) {
  transport_.deliver(0, conn, MemberMessage::make(std::move(body)), 0);
}

void Fabric::send_remote(NodeId from, NodeId to, net::MessagePtr msg) {
  ProcessId p;
  std::uint64_t e;
  {
    std::lock_guard<std::mutex> lk(mu_);
    e = active_.epoch;
    p = active_.process_of(to);
  }
  if (p == self()) return;  // raced a view flip; the frame is simply lost
  const NodeId conn = ensure_conn(p);
  if (conn == kNoNode) {
    remote_drops_.fetch_add(1, std::memory_order_relaxed);
    return;  // unreachable peer == crashed node: drop at delivery
  }
  // The envelope and its protocol frame must be adjacent on the wire;
  // send_mu_ keeps concurrent pairs from interleaving.  Control frames do
  // not take this lock — the receiver skips member frames when matching an
  // envelope to its protocol frame, so interleaved control traffic is safe.
  std::lock_guard<std::mutex> lk(send_mu_);
  transport_.deliver(0, conn, MemberMessage::make(Envelope{e, from, to}), 0);
  transport_.deliver(0, conn, std::move(msg), 0);
  envelopes_sent_.fetch_add(1, std::memory_order_relaxed);
}

bool Fabric::quiesce_sends(double timeout_s) {
  const double deadline = now_s() + timeout_s;
  while (true) {
    std::vector<NodeId> conns;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (const auto& [pid, peer] : peers_) {
        if (peer.conn != kNoNode) conns.push_back(peer.conn);
      }
    }
    bool clear = true;
    for (const NodeId c : conns) {
      if (transport_.backlog_bytes(c) > 0) clear = false;
    }
    if (clear) return true;
    if (now_s() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

Fabric::Stats Fabric::stats() const {
  Stats s;
  s.envelopes_sent = envelopes_sent_.load();
  s.envelopes_received = envelopes_received_.load();
  s.frames_forwarded = frames_forwarded_.load();
  s.remote_drops = remote_drops_.load();
  s.stale_drops = stale_drops_.load();
  s.future_drops = future_drops_.load();
  s.unpaired_drops = unpaired_drops_.load();
  return s;
}

// ---- receive path ------------------------------------------------------------

void Fabric::on_frame(NodeId conn, net::MessagePtr msg) {
  const auto* mm = dynamic_cast<const MemberMessage*>(msg.get());
  if (mm == nullptr) {
    handle_protocol(conn, std::move(msg));
    return;
  }
  const MemberBody& body = mm->body();
  if (const auto* h = std::get_if<Hello>(&body)) {
    std::lock_guard<std::mutex> lk(mu_);
    if (h->process != kNoProcess) {
      peers_[h->process].ep = Endpoint{"127.0.0.1", h->listen_port};
      if (peers_[h->process].conn == kNoNode) peers_[h->process].conn = conn;
      conn_to_process_[conn] = h->process;
    }
    return;
  }
  if (const auto* env = std::get_if<Envelope>(&body)) {
    handle_envelope(conn, *env);
    return;
  }
  if (const auto* p = std::get_if<ViewPropose>(&body)) {
    handle_view_propose(conn, *p);
    return;
  }
  if (const auto* a = std::get_if<ViewActivate>(&body)) {
    handle_view_activate(conn, *a);
    return;
  }
  ControlHandler control;
  {
    std::lock_guard<std::mutex> lk(mu_);
    control = control_;
  }
  if (control) control(conn, process_of_conn(conn), body);
}

void Fabric::handle_envelope(NodeId conn, const Envelope& env) {
  envelopes_received_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t active_epoch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    active_epoch = active_.epoch;
    RxState& st = rx_[conn];
    if (env.epoch == active_epoch) {
      st.env = env;
      st.has_envelope = true;
      st.drop_next = false;
      return;
    }
    st.has_envelope = false;
    st.drop_next = true;  // fence the paired protocol frame
  }
  if (env.epoch < active_epoch) {
    stale_drops_.fetch_add(1, std::memory_order_relaxed);
    send_control_conn(conn, StaleEpoch{active_epoch});
    return;
  }
  // The SENDER is ahead: we are the stale one.  Tell the host so it can
  // ViewFetch the current view from the coordinator.
  future_drops_.fetch_add(1, std::memory_order_relaxed);
  ControlHandler control;
  {
    std::lock_guard<std::mutex> lk(mu_);
    control = control_;
  }
  if (control) control(conn, process_of_conn(conn), MemberBody(env));
}

void Fabric::handle_protocol(NodeId conn, net::MessagePtr msg) {
  Envelope env;
  net::Network* net;
  net::Engine* engine;
  std::size_t lane;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = rx_.find(conn);
    if (it == rx_.end() || (!it->second.has_envelope && !it->second.drop_next)) {
      unpaired_drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (it->second.drop_next) {
      it->second.drop_next = false;  // fenced pair (already counted)
      return;
    }
    env = it->second.env;
    it->second.has_envelope = false;
    net = net_;
    engine = engine_;
    lane = lane_;
  }
  if (net == nullptr || engine == nullptr) {
    unpaired_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  frames_forwarded_.fetch_add(1, std::memory_order_relaxed);
  engine->post(lane, [net, env, m = std::move(msg)]() mutable {
    net->deliver_local(env.from, env.to, std::move(m), 0);
  });
}

void Fabric::handle_view_propose(NodeId conn, const ViewPropose& p) {
  auto decoded = View::decode_bytes(p.view);
  bool ok = false;
  std::uint64_t e = 0;
  if (decoded.ok()) {
    View v = std::move(decoded).value();
    e = v.epoch;
    std::uint64_t active_epoch;
    {
      std::lock_guard<std::mutex> lk(mu_);
      active_epoch = active_.epoch;
    }
    if (e == active_epoch) {
      ok = true;  // idempotent resend of the active view (ViewFetch path)
    } else {
      ok = propose(std::move(v));
    }
  }
  send_control_conn(conn, ViewAck{e, ok});
}

void Fabric::handle_view_activate(NodeId conn, const ViewActivate& a) {
  bool have_pending = false;
  bool already_active = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    already_active = active_.epoch == a.epoch;
    have_pending = pending_.has_value() && pending_->epoch == a.epoch;
  }
  if (already_active) {
    send_control_conn(conn, ViewAck{a.epoch, true});
    return;
  }
  if (have_pending) {
    // Wait for the surgery hook before acking: once the coordinator has our
    // ack it will resume traffic under the new epoch, and our servers must
    // exist by then.  (Hooks do not send through the fabric, so waiting on
    // a progress thread is safe; see header note.)
    activate(a.epoch, /*wait_for_hook=*/true);
    send_control_conn(conn, ViewAck{a.epoch, true});
    return;
  }
  // Activation for an epoch we never saw proposed: nack, and surface to the
  // host as a catch-up signal (it should ViewFetch).
  send_control_conn(conn, ViewAck{a.epoch, false});
  ControlHandler control;
  {
    std::lock_guard<std::mutex> lk(mu_);
    control = control_;
  }
  if (control) control(conn, process_of_conn(conn), MemberBody(a));
}

void Fabric::on_disconnect(NodeId conn) {
  std::lock_guard<std::mutex> lk(mu_);
  rx_.erase(conn);
  const auto it = conn_to_process_.find(conn);
  if (it != conn_to_process_.end()) {
    const auto pit = peers_.find(it->second);
    if (pit != peers_.end() && pit->second.conn == conn) {
      pit->second.conn = kNoNode;
    }
    conn_to_process_.erase(it);
  }
}

}  // namespace lds::member
