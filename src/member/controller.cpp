#include "member/controller.h"

#include <condition_variable>
#include <mutex>

namespace lds::member {

Result<std::uint64_t> Controller::call(store::RemoteReconfig req,
                                       double deadline_s) {
  struct Cell {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status st = Status::Ok();
    std::uint64_t epoch = 0;
  };
  auto cell = std::make_shared<Cell>();
  session_.async_call(
      std::move(req), deadline_s,
      [cell](Status st, store::RemoteReply reply) {
        std::lock_guard<std::mutex> lk(cell->mu);
        if (st.ok() && reply.code != StatusCode::kOk) {
          st = Status::FromCode(reply.code, reply.message);
        }
        cell->st = std::move(st);
        cell->epoch = reply.tag.z;  // RemoteReconfig replies: tag.z = epoch
        cell->done = true;
        cell->cv.notify_one();
      });
  std::unique_lock<std::mutex> lk(cell->mu);
  cell->cv.wait(lk, [&] { return cell->done; });
  if (!cell->st.ok()) return std::move(cell->st);
  return cell->epoch;
}

Result<std::uint64_t> Controller::epoch(double deadline_s) {
  store::RemoteReconfig req;
  req.op = 0;
  return call(std::move(req), deadline_s);
}

Result<std::uint64_t> Controller::move_l2(std::vector<std::uint32_t> indices,
                                          const std::string& host,
                                          std::uint16_t port,
                                          double deadline_s) {
  store::RemoteReconfig req;
  req.op = 1;
  req.l2_indices = std::move(indices);
  req.host = host;
  req.port = port;
  return call(std::move(req), deadline_s);
}

Result<std::uint64_t> Controller::move_l2_home(
    std::vector<std::uint32_t> indices, double deadline_s) {
  return move_l2(std::move(indices), "", 0, deadline_s);
}

void Controller::async_move_l2(std::vector<std::uint32_t> indices,
                               const std::string& host, std::uint16_t port,
                               std::function<void(Status, std::uint64_t)> done,
                               double deadline_s) {
  store::RemoteReconfig req;
  req.op = 1;
  req.l2_indices = std::move(indices);
  req.host = host;
  req.port = port;
  session_.async_call(std::move(req), deadline_s,
                      [done = std::move(done)](Status st,
                                               store::RemoteReply reply) {
                        if (st.ok() && reply.code != StatusCode::kOk) {
                          st = Status::FromCode(reply.code, reply.message);
                        }
                        if (done) done(std::move(st), reply.tag.z);
                      });
}

}  // namespace lds::member
