// member::View — one epoch of the membership configuration.
//
// The paper (Section II-a) fixes the server sets of both layers for the whole
// execution; this subsystem relaxes that with epoch-numbered views.  A view
// pins (1) the deployment geometry n1/f1/n2/f2 + code backend — every process
// must build the SAME LdsContext or coded elements would be meaningless
// across the wire — (2) the member processes and their TCP endpoints, and
// (3) the node→process placement: which process hosts each protocol NodeId
// (L1/L2 servers; clients always live in the coordinator process).  A node
// absent from the placement table belongs to the coordinator (process 0), so
// the all-local epoch-1 bootstrap view has an empty table.
//
// Views move over the wire inside ViewPropose frames (encode_bytes) and are
// persisted as `<dir>/VIEW` through the storage::Manifest machinery — the
// same CRC32C-guarded, atomically-renamed key/value file that pins cluster
// geometry, under a different file name — so the active epoch survives
// SIGKILL and a restarted coordinator resumes from the epoch it last
// activated, never an older one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "codes/factory.h"
#include "common/status.h"
#include "common/types.h"

namespace lds::member {

/// Index of one process in a view.  Process 0 is the coordinator (the
/// process running the StoreService front door and all protocol clients).
using ProcessId = std::uint32_t;
inline constexpr ProcessId kCoordinatorProcess = 0;
inline constexpr ProcessId kNoProcess = 0xffffffffu;

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  bool operator==(const Endpoint&) const = default;
  std::string str() const { return host + ":" + std::to_string(port); }
};

struct View {
  std::uint64_t epoch = 0;

  /// Deployment geometry, identical in every epoch of one deployment.
  std::uint32_t n1 = 0, f1 = 0, n2 = 0, f2 = 0;
  codes::BackendKind code = codes::BackendKind::PmMbr;

  /// Member processes by id.  Always contains the coordinator.
  std::map<ProcessId, Endpoint> processes;

  /// Node → hosting process.  Unlisted nodes belong to the coordinator.
  std::map<NodeId, ProcessId> placement;

  ProcessId process_of(NodeId id) const {
    const auto it = placement.find(id);
    return it == placement.end() ? kCoordinatorProcess : it->second;
  }
  bool same_geometry(const View& o) const {
    return n1 == o.n1 && f1 == o.f1 && n2 == o.n2 && f2 == o.f2 &&
           code == o.code;
  }

  /// Wire form (rides inside ViewPropose member frames).
  Bytes encode_bytes() const;
  /// Rejects truncated/unknown-version bytes with InvalidArgument.
  static Result<View> decode_bytes(const Bytes& b);

  /// Persist as `<dir>/VIEW` (creates `dir` if needed).
  Status save(const std::string& dir) const;
  /// Ok + nullopt when no VIEW file exists; InvalidArgument on corruption.
  static Result<std::optional<View>> load(const std::string& dir);
};

/// Name of the persisted view file inside a member data directory.
inline constexpr const char* kViewFileName = "VIEW";

}  // namespace lds::member
