// member::Coordinator — the head process's view-change driver.
//
// One worker thread serializes every membership operation (a join request, a
// controller-driven move, a ViewFetch catch-up); the fabric's control frames
// feed it.  Each change runs the same protocol:
//
//   build next view (epoch + 1)
//     -> propose locally + ViewPropose to every member process
//     -> collect ViewAcks (bounded wait; dead peers simply time out)
//     -> quiesce: pause client dispatch, drain dispatched ops, drain the
//        fabric's send backlogs (all old-epoch traffic is on the wire)
//     -> activate locally (runs the host's placement-surgery hook) and
//        ViewActivate every peer, collecting activation acks — the
//        load-bearing liveness step: when dispatch resumes, every LIVE
//        process is at the new epoch, so post-resume quorums only lose the
//        <= f2 servers of genuinely dead processes
//     -> resume dispatch
//     -> state-sync: SyncL2 to processes that gained an L2 (they repair via
//        the cross-process replace_l2 flow and answer SyncDone), and the
//        host's repair hook for L2s that came home.  Sync failures degrade
//        to "empty until the repair scheduler or next op repairs" — the
//        protocol itself tolerates f2 missing L2 servers.
//
// The epoch-tagged envelope fencing (fabric.h) guarantees no server ever
// processes a frame from a configuration other than its own.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "member/fabric.h"

namespace lds::member {

class Coordinator {
 public:
  /// Seams into the hosting StoreService (all may be empty for tests).
  struct Hooks {
    std::function<void()> pause;          ///< stop dispatching client ops
    std::function<bool(double)> drain;    ///< wait dispatched ops complete
    std::function<void()> resume;
    /// Objects currently interned on the fabric-backed shard.
    std::function<std::vector<ObjectId>()> objects;
    /// Regenerate L2 `index` (just adopted home) from its peers; `done`
    /// fires with (repaired, failed) counts.
    std::function<void(std::size_t,
                       std::function<void(std::uint32_t, std::uint32_t)>)>
        repair_local;
  };

  struct Timeouts {
    double propose_ack_s = 2.0;
    double drain_s = 2.0;
    double quiesce_s = 1.0;
    double activate_ack_s = 2.0;
    double sync_s = 30.0;
  };

  using MoveCallback = std::function<void(Status, std::uint64_t epoch)>;

  /// Installs itself as `fabric`'s control handler.  The fabric must outlive
  /// the coordinator, and Fabric::stop() must run BEFORE the coordinator is
  /// destroyed (a progress thread may hold a copy of the handler mid-call).
  Coordinator(Fabric& fabric, Hooks hooks)
      : Coordinator(fabric, std::move(hooks), Timeouts{}) {}
  Coordinator(Fabric& fabric, Hooks hooks, Timeouts timeouts);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Queue a move of L2 servers `indices` to the member process at
  /// host:port (must already be joined; matched by endpoint) or back to the
  /// head process when `host` is empty.  `done(status, epoch)` fires on the
  /// worker thread after state-sync finished (or was given up on).
  void move_l2(std::vector<std::uint32_t> indices, std::string host,
               std::uint16_t port, MoveCallback done);

  std::uint64_t epoch() const { return fabric_.epoch(); }
  /// Epochs this coordinator activated (for status output).
  std::uint64_t changes_applied() const;

  void stop();

 private:
  struct Op {
    enum class Kind { Join, Move, Fetch } kind = Kind::Fetch;
    // Join
    NodeId conn = kNoNode;
    std::uint16_t listen_port = 0;
    std::vector<NodeId> claims;
    // Move
    std::vector<std::uint32_t> indices;
    std::string host;
    std::uint16_t port = 0;
    MoveCallback done;
  };

  void on_control(NodeId conn, ProcessId from, const MemberBody& body);
  void worker();
  void run_join(Op op);
  void run_move(Op op);
  void run_fetch(Op op);
  /// The shared change protocol; `next` must be geometry-compatible with
  /// the active view and carry epoch active+1.  Returns the set of member
  /// processes that acked activation (definitely at the new epoch).
  Status apply_change(View next);
  /// State-sync one L2 index to its (new) owner.  Local owners repair via
  /// hooks_.repair_local; remote owners get SyncL2 and we await SyncDone.
  void sync_l2(const View& v, std::uint32_t index);
  void begin_ack_wait(std::uint64_t epoch);
  /// Wait until every process in `procs` responded (ack or nack) or the
  /// timeout expired; returns the processes that POSITIVELY acked.
  std::set<ProcessId> wait_acks(std::uint64_t epoch,
                                const std::set<ProcessId>& procs,
                                double timeout_s);
  std::optional<SyncDone> wait_sync_done(std::uint64_t epoch,
                                         std::uint32_t index,
                                         double timeout_s);
  ProcessId process_for_endpoint(const View& v, const std::string& host,
                                 std::uint16_t port) const;

  Fabric& fabric_;
  Hooks hooks_;
  Timeouts to_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Op> queue_;
  bool stopping_ = false;
  std::uint64_t changes_ = 0;

  // Ack collection (progress threads write, worker waits).
  std::mutex ack_mu_;
  std::condition_variable ack_cv_;
  std::uint64_t ack_epoch_ = 0;
  std::set<ProcessId> acked_, nacked_;
  std::vector<SyncDone> sync_done_;

  std::thread worker_;
};

}  // namespace lds::member
