#include "member/peer.h"

#include <chrono>
#include <future>

#include "common/assert.h"
#include "lds/cluster.h"
#include "net/latency.h"

namespace lds::member {

namespace {

Fabric::Options fabric_options(const std::string& view_dir) {
  Fabric::Options o;
  o.view_dir = view_dir;
  return o;
}

constexpr int kSyncRetries = 100;       // x 50ms = 5s for activation to land
constexpr double kSyncRetryDelayS = 0.05;
constexpr double kFetchMinIntervalS = 0.2;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PeerHost::PeerHost(Options opt)
    : opt_(std::move(opt)), fabric_(fabric_options(opt_.view_dir)) {
  fabric_.set_self(kNoProcess);  // a view naming our endpoint assigns it
  fabric_.set_view_change_hook(
      [this](const View& prev, const View& next) { apply_view(prev, next); });
  fabric_.set_control_handler(
      [this](NodeId conn, ProcessId from, const MemberBody& body) {
        on_control(conn, from, body);
      });
}

PeerHost::~PeerHost() { stop(); }

Status PeerHost::start() {
  LDS_REQUIRE(!started_.load(), "PeerHost::start: already started");
  net::ParallelEngine::Options eopt;
  eopt.lanes = 1;
  eopt.seed = opt_.seed;
  engine_ = std::make_unique<net::ParallelEngine>(eopt);
  net_ = std::make_unique<net::Network>(
      *engine_, /*lane=*/0,
      std::make_unique<net::FixedLatency>(1.0, 1.0, 10.0), opt_.seed);
  net_->set_transport(std::make_unique<RemoteTransport>(fabric_, *net_));
  fabric_.bind(net_.get(), engine_.get(), /*lane=*/0);
  engine_->start();
  started_.store(true);
  Status st = fabric_.listen(opt_.member_port);
  if (!st.ok()) return st;
  fabric_.register_peer(kCoordinatorProcess, opt_.join);
  return fabric_.send_control(kCoordinatorProcess,
                              JoinRequest{fabric_.port(), opt_.claims});
}

void PeerHost::stop() {
  if (!started_.exchange(false)) return;
  fabric_.stop();     // no more incoming frames or lane posts from the wire
  engine_->stop();    // lanes quiescent: server teardown is now safe
  l1_.clear();
  l2_.clear();
  ctx_.reset();
  net_.reset();
  engine_.reset();
}

std::vector<std::size_t> PeerHost::local_l1() const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < l1_.size(); ++j) {
    if (l1_[j] != nullptr) out.push_back(j);
  }
  return out;
}

std::vector<std::size_t> PeerHost::local_l2() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < l2_.size(); ++i) {
    if (l2_[i] != nullptr) out.push_back(i);
  }
  return out;
}

// ---- view surgery (on lane 0) -----------------------------------------------

void PeerHost::apply_view(const View&, const View& next) {
  if (ctx_ == nullptr) {
    core::LdsConfig cfg;
    cfg.n1 = next.n1;
    cfg.f1 = next.f1;
    cfg.n2 = next.n2;
    cfg.f2 = next.f2;
    cfg.backend = next.code;
    ctx_ = core::LdsContext::make(std::move(cfg));
    for (std::size_t j = 0; j < next.n1; ++j) {
      ctx_->l1_ids.push_back(core::kL1IdBase + static_cast<NodeId>(j));
    }
    for (std::size_t i = 0; i < next.n2; ++i) {
      ctx_->l2_ids.push_back(core::kL2IdBase + static_cast<NodeId>(i));
    }
    ctx_->encode_engine = engine_.get();
    l1_.resize(next.n1);
    l2_.resize(next.n2);
  } else {
    LDS_REQUIRE(ctx_->cfg.n1 == next.n1 && ctx_->cfg.f1 == next.f1 &&
                    ctx_->cfg.n2 == next.n2 && ctx_->cfg.f2 == next.f2,
                "PeerHost: view changed the deployment geometry");
  }
  const ProcessId self = fabric_.self();
  for (std::size_t j = 0; j < next.n1; ++j) {
    const NodeId id = core::kL1IdBase + static_cast<NodeId>(j);
    const bool mine = next.process_of(id) == self;
    if (mine && l1_[j] == nullptr) {
      l1_[j] = std::make_unique<core::ServerL1>(*net_, ctx_, j);
    } else if (!mine && l1_[j] != nullptr) {
      l1_[j].reset();
    }
  }
  for (std::size_t i = 0; i < next.n2; ++i) {
    const NodeId id = core::kL2IdBase + static_cast<NodeId>(i);
    const bool mine = next.process_of(id) == self;
    if (mine && l2_[i] == nullptr) {
      // Fresh and EMPTY: the coordinator's SyncL2 regenerates the contents
      // through repair_object (the cross-process replace_l2 flow).
      l2_[i] = std::make_unique<core::ServerL2>(*net_, ctx_, i, nullptr);
    } else if (!mine && l2_[i] != nullptr) {
      l2_[i].reset();
    }
  }
}

// ---- control (progress threads) ---------------------------------------------

void PeerHost::on_control(NodeId conn, ProcessId, const MemberBody& body) {
  if (const auto* sync = std::get_if<SyncL2>(&body)) {
    handle_sync(conn, *sync);
    return;
  }
  // Every remaining control signal a peer can receive says "you are behind":
  // StaleEpoch nacks, envelopes under a newer epoch, nacked activations.
  if (std::holds_alternative<StaleEpoch>(body) ||
      std::holds_alternative<Envelope>(body) ||
      std::holds_alternative<ViewActivate>(body)) {
    request_view(now_s());
  }
}

void PeerHost::handle_sync(NodeId conn, const SyncL2& sync) {
  if (!started_.load()) return;
  engine_->post(0, [this, conn, sync] {
    run_sync(conn, sync, /*next_obj=*/0, /*repaired=*/0, /*failed=*/0,
             kSyncRetries);
  });
}

void PeerHost::run_sync(NodeId conn, SyncL2 sync, std::size_t next_obj,
                        std::uint32_t repaired, std::uint32_t failed,
                        int retries) {
  const std::size_t i = sync.l2_index;
  if (i >= l2_.size() || l2_[i] == nullptr) {
    // Activation may still be in flight on another thread; retry briefly.
    if (retries > 0) {
      fabric_.transport().after(kSyncRetryDelayS, [this, conn, sync, next_obj,
                                                   repaired, failed,
                                                   retries]() mutable {
        engine_->post(0, [this, conn, sync = std::move(sync), next_obj,
                          repaired, failed, retries] {
          run_sync(conn, sync, next_obj, repaired, failed, retries - 1);
        });
      });
      return;
    }
    failed += static_cast<std::uint32_t>(sync.objects.size() - next_obj);
    next_obj = sync.objects.size();
  }
  if (next_obj >= sync.objects.size()) {
    fabric_.send_control_conn(
        conn, SyncDone{sync.epoch, sync.l2_index, repaired, failed});
    return;
  }
  const ObjectId obj = sync.objects[next_obj];
  l2_[i]->repair_object(obj, [this, conn, sync, next_obj, repaired,
                              failed](std::optional<Tag> tag) mutable {
    if (tag.has_value()) {
      ++repaired;
    } else {
      ++failed;
    }
    run_sync(conn, sync, next_obj + 1, repaired, failed, kSyncRetries);
  });
}

void PeerHost::request_view(double now) {
  {
    std::lock_guard<std::mutex> lk(fetch_mu_);
    if (now < last_fetch_ + kFetchMinIntervalS) return;
    last_fetch_ = now;
  }
  (void)fabric_.send_control(kCoordinatorProcess, ViewFetch{});
}

}  // namespace lds::member
