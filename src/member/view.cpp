#include "member/view.h"

#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "net/codec.h"
#include "storage/manifest.h"

namespace lds::member {

namespace {

constexpr std::uint8_t kViewWireVersion = 1;

std::optional<codes::BackendKind> parse_backend(const std::string& name) {
  for (const auto kind :
       {codes::BackendKind::PmMbr, codes::BackendKind::Rs,
        codes::BackendKind::Replication}) {
    if (name == codes::backend_name(kind)) return kind;
  }
  return std::nullopt;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_endpoint(const std::string& s, Endpoint* out) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  std::uint64_t port = 0;
  if (!parse_u64(s.substr(colon + 1), &port) || port > 0xffff) return false;
  out->host = s.substr(0, colon);
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

}  // namespace

Bytes View::encode_bytes() const {
  net::codec::Writer w;
  w.u8(kViewWireVersion);
  w.u64(epoch);
  w.u32(n1);
  w.u32(f1);
  w.u32(n2);
  w.u32(f2);
  w.blob(std::string(codes::backend_name(code)));
  w.u32(static_cast<std::uint32_t>(processes.size()));
  for (const auto& [pid, ep] : processes) {
    w.u32(pid);
    w.blob(ep.host);
    w.u16(ep.port);
  }
  w.u32(static_cast<std::uint32_t>(placement.size()));
  for (const auto& [node, pid] : placement) {
    w.i32(node);
    w.u32(pid);
  }
  return std::move(w).take();
}

Result<View> View::decode_bytes(const Bytes& b) {
  net::codec::Reader r(b.data(), b.size());
  const auto bad = [](const std::string& what) {
    return Status::InvalidArgument("view: " + what);
  };
  std::uint8_t version = 0;
  if (!r.u8(&version)) return bad("truncated");
  if (version != kViewWireVersion) return bad("unknown wire version");
  View v;
  std::string code_name;
  if (!r.u64(&v.epoch) || !r.u32(&v.n1) || !r.u32(&v.f1) || !r.u32(&v.n2) ||
      !r.u32(&v.f2) || !r.blob(&code_name)) {
    return bad("truncated geometry");
  }
  const auto kind = parse_backend(code_name);
  if (!kind) return bad("unknown code backend \"" + code_name + "\"");
  v.code = *kind;
  std::uint32_t nprocs = 0;
  if (!r.u32(&nprocs)) return bad("truncated process table");
  for (std::uint32_t i = 0; i < nprocs; ++i) {
    ProcessId pid = 0;
    Endpoint ep;
    if (!r.u32(&pid) || !r.blob(&ep.host) || !r.u16(&ep.port)) {
      return bad("truncated process entry");
    }
    v.processes[pid] = std::move(ep);
  }
  std::uint32_t nplace = 0;
  if (!r.u32(&nplace)) return bad("truncated placement table");
  for (std::uint32_t i = 0; i < nplace; ++i) {
    NodeId node = kNoNode;
    ProcessId pid = 0;
    if (!r.i32(&node) || !r.u32(&pid)) return bad("truncated placement entry");
    v.placement[node] = pid;
  }
  if (!r.exhausted()) return bad("trailing bytes");
  return v;
}

Status View::save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("view: create " + dir + ": " + ec.message());
  }
  storage::Manifest mf;
  mf.set("format", "lds-view-v1");
  mf.set("epoch", epoch);
  mf.set("n1", static_cast<std::uint64_t>(n1));
  mf.set("f1", static_cast<std::uint64_t>(f1));
  mf.set("n2", static_cast<std::uint64_t>(n2));
  mf.set("f2", static_cast<std::uint64_t>(f2));
  mf.set("code", codes::backend_name(code));
  for (const auto& [pid, ep] : processes) {
    mf.set("process." + std::to_string(pid), ep.str());
  }
  for (const auto& [node, pid] : placement) {
    mf.set("node." + std::to_string(node),
           static_cast<std::uint64_t>(pid));
  }
  return mf.store(dir, kViewFileName);
}

Result<std::optional<View>> View::load(const std::string& dir) {
  auto loaded = storage::Manifest::load(dir, kViewFileName);
  if (!loaded.ok()) return loaded.status();
  if (!loaded.value().has_value()) return std::optional<View>(std::nullopt);
  const storage::Manifest& mf = *loaded.value();
  const auto bad = [&](const std::string& what) {
    return Status::InvalidArgument("view: " + dir + "/" + kViewFileName +
                                   ": " + what);
  };
  const auto format = mf.get("format");
  if (!format || *format != "lds-view-v1") return bad("unknown format");
  View v;
  std::uint64_t u = 0;
  const auto geom = [&](const char* key, std::uint32_t* out) {
    const auto s = mf.get(key);
    if (!s || !parse_u64(*s, &u) || u > 0xffffffffu) return false;
    *out = static_cast<std::uint32_t>(u);
    return true;
  };
  const auto epoch_s = mf.get("epoch");
  if (!epoch_s || !parse_u64(*epoch_s, &v.epoch)) return bad("bad epoch");
  if (!geom("n1", &v.n1) || !geom("f1", &v.f1) || !geom("n2", &v.n2) ||
      !geom("f2", &v.f2)) {
    return bad("bad geometry");
  }
  const auto code_s = mf.get("code");
  const auto kind = code_s ? parse_backend(*code_s) : std::nullopt;
  if (!kind) return bad("unknown code backend");
  v.code = *kind;
  for (const auto& [key, value] : mf.entries()) {
    if (key.rfind("process.", 0) == 0) {
      std::uint64_t pid = 0;
      Endpoint ep;
      if (!parse_u64(key.substr(8), &pid) || pid > 0xffffffffu ||
          !parse_endpoint(value, &ep)) {
        return bad("bad process entry " + key);
      }
      v.processes[static_cast<ProcessId>(pid)] = std::move(ep);
    } else if (key.rfind("node.", 0) == 0) {
      std::uint64_t node = 0, pid = 0;
      if (!parse_u64(key.substr(5), &node) || node > 0x7fffffffu ||
          !parse_u64(value, &pid) || pid > 0xffffffffu) {
        return bad("bad placement entry " + key);
      }
      v.placement[static_cast<NodeId>(node)] = static_cast<ProcessId>(pid);
    }
  }
  return std::optional<View>(std::move(v));
}

}  // namespace lds::member
