#include "lds/cluster.h"

#include <algorithm>
#include <map>
#include <utility>

#include "codes/factory.h"
#include "net/transport.h"
#include "storage/fsutil.h"
#include "storage/manifest.h"

namespace lds::core {

namespace {
std::unique_ptr<net::LatencyModel> make_latency(const LdsCluster::Options& o) {
  switch (o.latency) {
    case LdsCluster::LatencyKind::Fixed:
      return std::make_unique<net::FixedLatency>(o.tau1, o.tau0, o.tau2);
    case LdsCluster::LatencyKind::Uniform:
      return std::make_unique<net::UniformLatency>(o.tau1, o.tau0, o.tau2,
                                                   o.uniform_lo_frac);
    case LdsCluster::LatencyKind::Exponential:
      return std::make_unique<net::ExponentialLatency>(o.tau1, o.tau0,
                                                       o.tau2);
  }
  LDS_REQUIRE(false, "LdsCluster: unknown latency kind");
  return nullptr;
}
}  // namespace

LdsCluster::LdsCluster(Options opt) : opt_(std::move(opt)) {
  opt_.cfg.validate();
  LDS_REQUIRE(opt_.writers >= 1 && opt_.writers < 9999,
              "LdsCluster: writer count out of range");
  // Engine resolution: explicit engine lane > external simulator (wrapped in
  // a SimEngine, the pre-engine sharing pattern) > own a fresh SimEngine.
  if (opt_.engine != nullptr) {
    engine_ = opt_.engine;
  } else if (opt_.sim != nullptr) {
    opt_.lane = 0;
    owned_engine_ = std::make_unique<net::SimEngine>(*opt_.sim, opt_.seed);
    engine_ = owned_engine_.get();
  } else {
    opt_.lane = 0;
    owned_engine_ = std::make_unique<net::SimEngine>(opt_.seed);
    engine_ = owned_engine_.get();
  }
  sim_ = &engine_->lane_sim(opt_.lane);
  net_ = std::make_unique<net::Network>(*engine_, opt_.lane, make_latency(opt_),
                                        opt_.seed);
  if (opt_.transport_factory) {
    net_->set_transport(opt_.transport_factory(*net_));
  }
  LDS_REQUIRE(opt_.remote_l1.empty() && opt_.remote_l2.empty()
                  ? true
                  : static_cast<bool>(opt_.transport_factory),
              "LdsCluster: remote placement requires a transport_factory");
  LDS_REQUIRE((opt_.remote_l1.empty() && opt_.remote_l2.empty()) ||
                  opt_.data_dir.empty(),
              "LdsCluster: remote placement is RAM-only (no data_dir)");
  for (const std::size_t j : opt_.remote_l1) {
    LDS_REQUIRE(j < opt_.cfg.n1, "LdsCluster: remote_l1 index out of range");
  }
  for (const std::size_t i : opt_.remote_l2) {
    LDS_REQUIRE(i < opt_.cfg.n2, "LdsCluster: remote_l2 index out of range");
  }

  ctx_ = LdsContext::make(opt_.cfg);
  ctx_->meter = &meter_;
  ctx_->encode_engine = engine_;
  for (std::size_t j = 0; j < opt_.cfg.n1; ++j) {
    ctx_->l1_ids.push_back(kL1IdBase + static_cast<NodeId>(j));
  }
  for (std::size_t i = 0; i < opt_.cfg.n2; ++i) {
    ctx_->l2_ids.push_back(kL2IdBase + static_cast<NodeId>(i));
  }

  const bool durable = !opt_.data_dir.empty();
  if (durable) {
    ctx_->durable_acks = true;
    // Fail fast on a data_dir written by a different deployment: recovered
    // coded elements are meaningless under another geometry or code.
    storage::Manifest mf;
    mf.set("format", "lds-cluster-v1");
    mf.set("n1", static_cast<std::uint64_t>(opt_.cfg.n1));
    mf.set("f1", static_cast<std::uint64_t>(opt_.cfg.f1));
    mf.set("n2", static_cast<std::uint64_t>(opt_.cfg.n2));
    mf.set("f2", static_cast<std::uint64_t>(opt_.cfg.f2));
    mf.set("code", codes::backend_name(opt_.cfg.backend));
    auto st = mf.verify_or_write(opt_.data_dir);
    LDS_REQUIRE(st.ok(),
                ("LdsCluster: " + std::string(st.message())).c_str());
  }

  for (std::size_t j = 0; j < opt_.cfg.n1; ++j) {
    l1_.push_back(opt_.remote_l1.contains(j)
                      ? nullptr
                      : std::make_unique<ServerL1>(*net_, ctx_, j));
  }
  for (std::size_t i = 0; i < opt_.cfg.n2; ++i) {
    l2_.push_back(opt_.remote_l2.contains(i)
                      ? nullptr
                      : std::make_unique<ServerL2>(
                            *net_, ctx_, i,
                            durable ? open_l2_backend(i) : nullptr));
  }
  for (std::size_t w = 0; w < opt_.writers; ++w) {
    writers_.push_back(std::make_unique<Writer>(
        *net_, ctx_, static_cast<NodeId>(1 + w), &history_));
  }
  for (std::size_t r = 0; r < opt_.readers; ++r) {
    readers_.push_back(std::make_unique<Reader>(
        *net_, ctx_, kReaderIdBase + static_cast<NodeId>(r), &history_,
        opt_.read_consistency));
  }
  // Regular-consistency pool (Section VI extension): ids follow the atomic
  // readers' block so both pools stay within the reader id range.
  for (std::size_t r = 0; r < opt_.regular_readers; ++r) {
    regular_readers_.push_back(std::make_unique<Reader>(
        *net_, ctx_,
        kReaderIdBase + static_cast<NodeId>(opt_.readers + r), &history_,
        ReadConsistency::Regular));
  }

  if (durable) recover_from_storage();
}

std::string LdsCluster::l2_dir(std::size_t i) const {
  return opt_.data_dir + "/l2-" + std::to_string(i);
}

std::unique_ptr<storage::Backend> LdsCluster::open_l2_backend(std::size_t i) {
  auto be = storage::DurableBackend::open(l2_dir(i), opt_.durability);
  LDS_REQUIRE(be.ok(), ("LdsCluster: open L2 backend " + l2_dir(i) + ": " +
                        be.status().message())
                           .c_str());
  return std::move(be).value();
}

void LdsCluster::recover_from_storage() {
  // Gather every surviving (tag, element) version per object across all L2
  // backends, keyed by tag descending, one element per code coordinate.
  // Versions (not just each server's newest holding) matter: at SIGKILL the
  // servers may hold several distinct in-flight tags, none with k live
  // copies, while the newest *durably acknowledged* tag — the one some
  // completed client operation may have observed — still has >= k copies
  // among the overwritten WAL records.
  struct Candidates {
    std::map<Tag, std::map<int, Bytes>> by_tag;  // tag -> coord -> element
  };
  std::map<ObjectId, Candidates> objects;
  for (std::size_t i = 0; i < l2_.size(); ++i) {
    const storage::Backend* be = l2_[i]->storage_backend();
    LDS_CHECK(be != nullptr, "recover_from_storage: RAM-only L2");
    const int coord = static_cast<int>(opt_.cfg.n1 + i);
    for (const auto& v : be->recovered_versions()) {
      if (v.tag == kTag0) continue;
      objects[v.obj].by_tag[v.tag].emplace(coord, v.element);
    }
  }

  std::uint32_t seq = 0;
  for (auto& [obj, cand] : objects) {
    // Newest tag restorable from >= k distinct coordinates wins.  This is
    // at least as new as any tag a pre-crash client operation completed on:
    // completion required an l2_quorum (= f2 + d >= k) of synced acks.
    Tag chosen = kTag0;
    Bytes value;
    for (auto it = cand.by_tag.rbegin(); it != cand.by_tag.rend(); ++it) {
      if (it->second.size() < opt_.cfg.k()) continue;
      std::vector<codes::IndexedBytes> elems;
      elems.reserve(it->second.size());
      for (auto& [coord, element] : it->second) {
        elems.emplace_back(coord, element);
      }
      auto decoded = ctx_->code.decode_value(elems);
      if (!decoded) continue;
      chosen = it->first;
      value = std::move(*decoded);
      break;
    }
    if (chosen == kTag0) continue;

    // Force the whole shard to exactly (chosen, value): re-encode and store
    // at every L2 server, downgrading divergent newer tags — those never
    // reached a quorum (else they would have been chosen), so no client saw
    // them, and a uniform back layer is what keeps post-restart
    // regeneration live with zero further writes.
    const auto& coded = ctx_->encoded_elements(obj, chosen, value);
    for (std::size_t i = 0; i < l2_.size(); ++i) {
      if (l2_[i]->stored_tag(obj) != chosen) {
        l2_[i]->recovery_store(obj, chosen, coded[opt_.cfg.n1 + i]);
      }
    }
    for (auto& l1 : l1_) l1->recover_committed(obj, chosen);

    // The checkers must see the recovered state as a write that actually
    // happened (it did, in a previous incarnation): synthesize a completed
    // write at t=now carrying the recovered tag and value.  The op id keys
    // off the original writer id recorded in the tag, with a sequence block
    // (0xEC0000) no live client uses.
    const std::size_t idx =
        history_.on_invoke(make_op_id(static_cast<NodeId>(chosen.w),
                                      0xEC0000u + seq),
                           OpKind::Write, obj, static_cast<NodeId>(chosen.w),
                           sim_->now());
    history_.on_response(idx, sim_->now(), chosen, Value(std::move(value)));
    recovered_objects_.emplace_back(obj, chosen);
    ++seq;
  }
}

ServerL1& LdsCluster::l1(std::size_t j) {
  ServerL1* s = l1_.at(j).get();
  LDS_REQUIRE(s != nullptr, "LdsCluster::l1: server is placed remotely");
  return *s;
}

ServerL2& LdsCluster::l2(std::size_t i) {
  ServerL2* s = l2_.at(i).get();
  LDS_REQUIRE(s != nullptr, "LdsCluster::l2: server is placed remotely");
  return *s;
}

void LdsCluster::release_l1(std::size_t j) { l1_.at(j).reset(); }

void LdsCluster::release_l2(std::size_t i) { l2_.at(i).reset(); }

ServerL1& LdsCluster::adopt_l1(std::size_t j) {
  LDS_REQUIRE(l1_.at(j) == nullptr, "adopt_l1: server already local");
  l1_.at(j) = std::make_unique<ServerL1>(*net_, ctx_, j);
  return *l1_.at(j);
}

ServerL2& LdsCluster::adopt_l2(std::size_t i) {
  LDS_REQUIRE(l2_.at(i) == nullptr, "adopt_l2: server already local");
  // RAM-only, like every remote-placement slot (construction enforces it):
  // the follow-up repair_object round regenerates state from quorum peers.
  l2_.at(i) = std::make_unique<ServerL2>(*net_, ctx_, i, nullptr);
  return *l2_.at(i);
}

ServerL2& LdsCluster::replace_l2(std::size_t i) {
  // Id-reuse protocol: Network::attach asserts that an id is attached at
  // most once, so the crashed instance must detach (destruct) before the
  // replacement constructs under the same id.  Keeping the two steps inside
  // this helper is what makes the assert sound for every repair path.
  LDS_REQUIRE(l2_.at(i) != nullptr,
              "replace_l2: server is placed remotely (use adopt_l2)");
  l2_.at(i).reset();
  std::unique_ptr<storage::Backend> backend;
  if (!opt_.data_dir.empty()) {
    // A replacement models a NEW disk: wipe the old one (possibly poisoned
    // or stale) and start from an empty backend.  The subsequent
    // repair_object() round re-persists the regenerated element through the
    // ordinary store path, so durability survives reconfiguration churn.
    auto st = storage::wipe_dir(l2_dir(i));
    LDS_REQUIRE(st.ok(), ("replace_l2: wipe " + l2_dir(i) + ": " +
                          st.message())
                             .c_str());
    backend = open_l2_backend(i);
  }
  l2_.at(i) = std::make_unique<ServerL2>(*net_, ctx_, i, std::move(backend));
  return *l2_.at(i);
}

void LdsCluster::write_at(net::SimTime t, std::size_t writer_idx, ObjectId obj,
                          Value value, Writer::Callback cb) {
  Writer* w = writers_.at(writer_idx).get();
  sim_->at(t, [w, obj, value = std::move(value), cb = std::move(cb)]() mutable {
    w->write(obj, std::move(value), std::move(cb));
  });
}

void LdsCluster::read_at(net::SimTime t, std::size_t reader_idx, ObjectId obj,
                         Reader::Callback cb) {
  Reader* r = readers_.at(reader_idx).get();
  sim_->at(t, [r, obj, cb = std::move(cb)]() mutable {
    r->read(obj, std::move(cb));
  });
}

Tag LdsCluster::write_sync(std::size_t writer_idx, ObjectId obj, Value value) {
  bool done = false;
  Tag tag;
  writers_.at(writer_idx)
      ->write(obj, std::move(value), [&](Tag t) {
        done = true;
        tag = t;
      });
  while (!done && sim_->step()) {
  }
  LDS_REQUIRE(done, "write_sync: simulation drained before write completed");
  return tag;
}

std::pair<Tag, Value> LdsCluster::read_sync(std::size_t reader_idx,
                                            ObjectId obj) {
  bool done = false;
  Tag tag;
  Value value;
  readers_.at(reader_idx)->read(obj, [&](Tag t, Value v) {
    done = true;
    tag = t;
    value = std::move(v);
  });
  while (!done && sim_->step()) {
  }
  LDS_REQUIRE(done, "read_sync: simulation drained before read completed");
  return {tag, std::move(value)};
}

}  // namespace lds::core
