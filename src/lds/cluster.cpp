#include "lds/cluster.h"

namespace lds::core {

namespace {
std::unique_ptr<net::LatencyModel> make_latency(const LdsCluster::Options& o) {
  switch (o.latency) {
    case LdsCluster::LatencyKind::Fixed:
      return std::make_unique<net::FixedLatency>(o.tau1, o.tau0, o.tau2);
    case LdsCluster::LatencyKind::Uniform:
      return std::make_unique<net::UniformLatency>(o.tau1, o.tau0, o.tau2,
                                                   o.uniform_lo_frac);
    case LdsCluster::LatencyKind::Exponential:
      return std::make_unique<net::ExponentialLatency>(o.tau1, o.tau0,
                                                       o.tau2);
  }
  LDS_REQUIRE(false, "LdsCluster: unknown latency kind");
  return nullptr;
}
}  // namespace

LdsCluster::LdsCluster(Options opt) : opt_(std::move(opt)) {
  opt_.cfg.validate();
  LDS_REQUIRE(opt_.writers >= 1 && opt_.writers < 9999,
              "LdsCluster: writer count out of range");
  // Engine resolution: explicit engine lane > external simulator (wrapped in
  // a SimEngine, the pre-engine sharing pattern) > own a fresh SimEngine.
  if (opt_.engine != nullptr) {
    engine_ = opt_.engine;
  } else if (opt_.sim != nullptr) {
    opt_.lane = 0;
    owned_engine_ = std::make_unique<net::SimEngine>(*opt_.sim, opt_.seed);
    engine_ = owned_engine_.get();
  } else {
    opt_.lane = 0;
    owned_engine_ = std::make_unique<net::SimEngine>(opt_.seed);
    engine_ = owned_engine_.get();
  }
  sim_ = &engine_->lane_sim(opt_.lane);
  net_ = std::make_unique<net::Network>(*engine_, opt_.lane, make_latency(opt_),
                                        opt_.seed);

  ctx_ = LdsContext::make(opt_.cfg);
  ctx_->meter = &meter_;
  ctx_->encode_engine = engine_;
  for (std::size_t j = 0; j < opt_.cfg.n1; ++j) {
    ctx_->l1_ids.push_back(kL1IdBase + static_cast<NodeId>(j));
  }
  for (std::size_t i = 0; i < opt_.cfg.n2; ++i) {
    ctx_->l2_ids.push_back(kL2IdBase + static_cast<NodeId>(i));
  }

  for (std::size_t j = 0; j < opt_.cfg.n1; ++j) {
    l1_.push_back(std::make_unique<ServerL1>(*net_, ctx_, j));
  }
  for (std::size_t i = 0; i < opt_.cfg.n2; ++i) {
    l2_.push_back(std::make_unique<ServerL2>(*net_, ctx_, i));
  }
  for (std::size_t w = 0; w < opt_.writers; ++w) {
    writers_.push_back(std::make_unique<Writer>(
        *net_, ctx_, static_cast<NodeId>(1 + w), &history_));
  }
  for (std::size_t r = 0; r < opt_.readers; ++r) {
    readers_.push_back(std::make_unique<Reader>(
        *net_, ctx_, kReaderIdBase + static_cast<NodeId>(r), &history_,
        opt_.read_consistency));
  }
  // Regular-consistency pool (Section VI extension): ids follow the atomic
  // readers' block so both pools stay within the reader id range.
  for (std::size_t r = 0; r < opt_.regular_readers; ++r) {
    regular_readers_.push_back(std::make_unique<Reader>(
        *net_, ctx_,
        kReaderIdBase + static_cast<NodeId>(opt_.readers + r), &history_,
        ReadConsistency::Regular));
  }
}

ServerL2& LdsCluster::replace_l2(std::size_t i) {
  // Id-reuse protocol: Network::attach asserts that an id is attached at
  // most once, so the crashed instance must detach (destruct) before the
  // replacement constructs under the same id.  Keeping the two steps inside
  // this helper is what makes the assert sound for every repair path.
  l2_.at(i).reset();
  l2_.at(i) = std::make_unique<ServerL2>(*net_, ctx_, i);
  return *l2_.at(i);
}

void LdsCluster::write_at(net::SimTime t, std::size_t writer_idx, ObjectId obj,
                          Value value, Writer::Callback cb) {
  Writer* w = writers_.at(writer_idx).get();
  sim_->at(t, [w, obj, value = std::move(value), cb = std::move(cb)]() mutable {
    w->write(obj, std::move(value), std::move(cb));
  });
}

void LdsCluster::read_at(net::SimTime t, std::size_t reader_idx, ObjectId obj,
                         Reader::Callback cb) {
  Reader* r = readers_.at(reader_idx).get();
  sim_->at(t, [r, obj, cb = std::move(cb)]() mutable {
    r->read(obj, std::move(cb));
  });
}

Tag LdsCluster::write_sync(std::size_t writer_idx, ObjectId obj, Value value) {
  bool done = false;
  Tag tag;
  writers_.at(writer_idx)
      ->write(obj, std::move(value), [&](Tag t) {
        done = true;
        tag = t;
      });
  while (!done && sim_->step()) {
  }
  LDS_REQUIRE(done, "write_sync: simulation drained before write completed");
  return tag;
}

std::pair<Tag, Value> LdsCluster::read_sync(std::size_t reader_idx,
                                            ObjectId obj) {
  bool done = false;
  Tag tag;
  Value value;
  readers_.at(reader_idx)->read(obj, [&](Tag t, Value v) {
    done = true;
    tag = t;
    value = std::move(v);
  });
  while (!done && sim_->step()) {
  }
  LDS_REQUIRE(done, "read_sync: simulation drained before read completed");
  return {tag, std::move(value)};
}

}  // namespace lds::core
