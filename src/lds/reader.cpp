#include "lds/reader.h"

namespace lds::core {

Reader::Reader(net::Network& net, std::shared_ptr<const LdsContext> ctx,
               NodeId id, History* history, ReadConsistency consistency)
    : Node(net, id, Role::Reader),
      ctx_(std::move(ctx)),
      history_(history),
      consistency_(consistency) {}

void Reader::finish() {
  phase_ = Phase::Idle;
  if (history_ != nullptr && !tag_only_) {
    history_->on_response(history_index_, net_.sim().now(), result_tag_,
                          result_value_);
  }
  if (cb_) {
    auto cb = std::move(cb_);
    cb_ = nullptr;
    cb(result_tag_, std::move(result_value_));
  }
}

void Reader::send_to_l1(const LdsBody& body) {
  for (NodeId s : ctx_->l1_ids) {
    send(s, LdsMessage::make(obj_, op_, body));
  }
}

void Reader::read(ObjectId obj, Callback cb) {
  start(obj, std::move(cb), /*tag_only=*/false);
}

void Reader::read_tag(ObjectId obj, Callback cb) {
  start(obj, std::move(cb), /*tag_only=*/true);
}

void Reader::start(ObjectId obj, Callback cb, bool tag_only) {
  LDS_REQUIRE(!busy(), "Reader: client must be well-formed (one op at a time)");
  LDS_REQUIRE(!crashed(), "Reader: crashed client cannot invoke");
  phase_ = Phase::GetCommittedTag;
  tag_only_ = tag_only;
  op_ = make_op_id(id(), ++seq_);
  obj_ = obj;
  cb_ = std::move(cb);
  treq_ = kTag0;
  responders_.clear();
  have_value_ = false;
  best_value_tag_ = kTag0;
  best_value_ = Value();
  coded_.clear();
  // Tag-only rounds carry no value and are not history reads; the caller
  // (the client cache) records the operation it actually serves.
  if (history_ != nullptr && !tag_only_) {
    history_index_ =
        history_->on_invoke(op_, OpKind::Read, obj_, id(), net_.sim().now());
  }
  send_to_l1(QueryCommTag{});
}

void Reader::maybe_finish_get_data() {
  if (responders_.size() < ctx_->cfg.l1_quorum()) return;

  // Best decodable coded tag (>= k elements on a common tag).
  bool have_coded = false;
  Tag best_coded_tag;
  for (auto it = coded_.rbegin(); it != coded_.rend(); ++it) {
    if (it->second.size() >= ctx_->cfg.k()) {
      have_coded = true;
      best_coded_tag = it->first;
      break;
    }
  }
  if (!have_value_ && !have_coded) return;

  // Pick the candidate with the highest tag; prefer the directly-served
  // value on ties (no decode needed).
  if (have_coded && (!have_value_ || best_coded_tag > best_value_tag_)) {
    auto decoded = ctx_->code.decode_value(coded_[best_coded_tag]);
    if (!decoded) {
      // Malformed coded set (cannot happen with correct servers); fall back
      // to the value candidate if one exists, else keep waiting.
      if (!have_value_) return;
      result_tag_ = best_value_tag_;
      result_value_ = best_value_;
    } else {
      result_tag_ = best_coded_tag;
      result_value_ = std::move(*decoded);
    }
  } else {
    result_tag_ = best_value_tag_;
    result_value_ = best_value_;
  }

  if (consistency_ == ReadConsistency::Regular) {
    // Regular reads skip the put-tag phase (Section VI extension); still
    // drop any Gamma registrations so servers stop serving this operation.
    send_to_l1(UnregisterReader{});
    finish();
    return;
  }

  // put-tag phase: write back the tag (not the value - that is what keeps
  // the read cost low), ensuring f1 + k servers commit at least tr.
  phase_ = Phase::PutTag;
  responders_.clear();
  send_to_l1(PutTag{result_tag_});
}

void Reader::on_message(NodeId from, const net::MessagePtr& msg) {
  const auto* m = dynamic_cast<const LdsMessage*>(msg.get());
  LDS_CHECK(m != nullptr, "Reader: non-LDS message");
  if (m->op() != op_) return;  // stale response from a previous operation
  const std::size_t quorum = ctx_->cfg.l1_quorum();

  if (const auto* t = std::get_if<CommTagResp>(&m->body())) {
    if (phase_ != Phase::GetCommittedTag) return;
    if (!responders_.insert(from).second) return;
    if (t->tag > treq_) treq_ = t->tag;
    if (responders_.size() < quorum) return;
    if (tag_only_) {
      // Validation round complete: treq is a committed-tag floor over a
      // full quorum.  Skip get-data and put-tag entirely.
      result_tag_ = treq_;
      result_value_ = Value();
      finish();
      return;
    }
    phase_ = Phase::GetData;
    responders_.clear();
    send_to_l1(QueryData{treq_});
    return;
  }

  if (phase_ == Phase::GetData) {
    if (const auto* v = std::get_if<DataRespValue>(&m->body())) {
      responders_.insert(from);
      if (v->tag >= treq_ && (!have_value_ || v->tag > best_value_tag_)) {
        have_value_ = true;
        best_value_tag_ = v->tag;
        best_value_ = v->value;
      }
      maybe_finish_get_data();
      return;
    }
    if (const auto* c = std::get_if<DataRespCoded>(&m->body())) {
      responders_.insert(from);
      if (c->tag >= treq_) {
        coded_[c->tag].emplace_back(c->code_index, c->element);
      }
      maybe_finish_get_data();
      return;
    }
    if (std::get_if<DataRespNack>(&m->body()) != nullptr) {
      responders_.insert(from);
      maybe_finish_get_data();
      return;
    }
    return;
  }

  if (std::get_if<PutTagAck>(&m->body()) != nullptr) {
    if (phase_ != Phase::PutTag) return;
    if (!responders_.insert(from).second) return;
    if (responders_.size() < quorum) return;
    finish();
    return;
  }
}

}  // namespace lds::core
