#include "lds/server_l2.h"

#include <algorithm>
#include <map>

namespace lds::core {

ServerL2::ServerL2(net::Network& net, std::shared_ptr<const LdsContext> ctx,
                   std::size_t index,
                   std::unique_ptr<storage::Backend> backend)
    : Node(net, ctx->l2_ids.at(index), Role::ServerL2),
      ctx_(std::move(ctx)),
      index_(index),
      backend_(std::move(backend)) {
  if (backend_ == nullptr) return;
  // Adopt everything the backend recovered from checkpoint + WAL.
  for (const auto& [obj, entry] : backend_->recovered()) {
    ObjectState st;
    st.tag = entry.tag;
    st.element = entry.element;
    stored_bytes_ += st.element.size();
    if (ctx_->meter) ctx_->meter->add_l2(st.element.size());
    objects_.emplace(obj, std::move(st));
  }
  // Checkpoints snapshot the live map, not the log being truncated.
  backend_->set_snapshot_source([this](const storage::Backend::SnapshotSink&
                                           sink) {
    for (const auto& [obj, st] : objects_) sink(obj, st.tag, st.element);
  });
}

ServerL2::~ServerL2() {
  // Keep the storage gauge consistent when a server object is torn down
  // (e.g. replaced after a crash).
  if (ctx_->meter) ctx_->meter->sub_l2(stored_bytes_);
  // GroupCommit/Never: flush the unsynced tail on clean teardown so a
  // graceful shutdown loses nothing (failure here just means the next
  // recovery replays less; nothing to report on a destructor path).
  if (backend_ != nullptr) backend_->sync();
}

ServerL2::ObjectState& ServerL2::object(ObjectId obj) {
  return const_cast<ObjectState&>(
      static_cast<const ServerL2*>(this)->object(obj));
}

const ServerL2::ObjectState& ServerL2::object(ObjectId obj) const {
  auto it = objects_.find(obj);
  if (it == objects_.end()) {
    ObjectState st;
    st.tag = kTag0;
    st.element = ctx_->initial_element(code_index());
    stored_bytes_ += st.element.size();
    if (ctx_->meter) ctx_->meter->add_l2(st.element.size());
    it = objects_.emplace(obj, std::move(st)).first;
  }
  return it->second;
}

bool ServerL2::store(ObjectId obj, Tag tag, Bytes element) {
  // Persist-before-apply: if the disk refuses, neither RAM nor the acker
  // sees the element — the server simply behaves like one that never
  // received the message, which the f2 fault budget already covers.
  if (backend_ != nullptr && !backend_->put(obj, tag, element).ok()) {
    return false;
  }
  ObjectState& st = object(obj);
  const std::uint64_t old_size = st.element.size();
  st.tag = tag;
  st.element = std::move(element);
  stored_bytes_ += st.element.size();
  stored_bytes_ -= old_size;
  if (ctx_->meter) {
    ctx_->meter->add_l2(st.element.size());
    ctx_->meter->sub_l2(old_size);
  }
  return true;
}

void ServerL2::recovery_store(ObjectId obj, Tag tag, Bytes element) {
  store(obj, tag, std::move(element));
}

std::vector<ObjectId> ServerL2::stored_objects() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [obj, st] : objects_) out.push_back(obj);
  return out;
}

void ServerL2::broadcast_durable_ack(ObjectId obj, Tag tag) {
  // Post-repair liveness (durable mode): deferred writer/reader acks at L1
  // wait for an l2_quorum of AckCodeElems, and messages to a server that
  // was down are gone.  The repaired server announces its newest durable
  // tag to all of L1; write_to_l2_complete treats it as the missing ack and
  // the durable watermark advances past every stuck older tag.
  if (tag == kTag0) return;
  for (NodeId l1 : ctx_->l1_ids) {
    send(l1, LdsMessage::make(obj, kNoOp, AckCodeElem{tag}));
  }
}

void ServerL2::forget_object(ObjectId obj) {
  auto it = objects_.find(obj);
  if (it == objects_.end()) return;
  stored_bytes_ -= it->second.element.size();
  if (ctx_->meter) ctx_->meter->sub_l2(it->second.element.size());
  objects_.erase(it);
  // Tombstone so recovery does not resurrect the forgotten state.  A
  // poisoned backend cannot persist it; the wipe in replace_l2 covers that.
  if (backend_ != nullptr) backend_->forget(obj);
  // Re-materializing via object() would resurrect (t0, c0); a repaired
  // server instead fills the slot through repair_object().  Until then the
  // server answers helper queries from the (t0, c0) default, which is the
  // best a fresh replacement could legitimately claim.
}

Tag ServerL2::stored_tag(ObjectId obj) const { return object(obj).tag; }

const Bytes& ServerL2::stored_element(ObjectId obj) const {
  return object(obj).element;
}

// ---- repair extension ---------------------------------------------------------

void ServerL2::repair_object(ObjectId obj, RepairCallback done,
                             int max_rounds) {
  LDS_REQUIRE(!crashed(), "ServerL2::repair_object on crashed server");
  LDS_REQUIRE(!repairs_.contains(obj),
              "ServerL2::repair_object: repair already in progress");
  Repair rep;
  rep.done = std::move(done);
  rep.rounds_left = max_rounds;
  repairs_.emplace(obj, std::move(rep));
  start_repair_round(obj);
}

void ServerL2::start_repair_round(ObjectId obj) {
  Repair& rep = repairs_.at(obj);
  if (rep.rounds_left == 0) {
    auto done = std::move(rep.done);
    repairs_.erase(obj);
    if (done) done(std::nullopt);
    return;
  }
  --rep.rounds_left;
  rep.responses = 0;
  rep.helpers.clear();
  const OpId op = make_op_id(id(), ++repair_seq_);
  repair_ops_[op] = obj;
  for (std::size_t i = 0; i < ctx_->l2_ids.size(); ++i) {
    if (i == index_) continue;
    send(ctx_->l2_ids[i],
         LdsMessage::make(obj, op, QueryCodeElem{code_index()}));
  }
}

void ServerL2::finish_repair_round(ObjectId obj, OpId op) {
  Repair& rep = repairs_.at(obj);
  repair_ops_.erase(op);

  std::map<Tag, std::vector<codes::IndexedBytes>> by_tag;
  for (const auto& h : rep.helpers) {
    by_tag[h.tag].emplace_back(static_cast<int>(ctx_->cfg.n1) + h.l2_index,
                               h.payload);
  }
  const std::size_t need = ctx_->code.d();
  for (auto it = by_tag.rbegin(); it != by_tag.rend(); ++it) {
    if (it->second.size() < need) continue;
    auto element = ctx_->code.repair_element(code_index(), it->second);
    if (!element) continue;
    const Tag tag = it->first;
    // Keep whichever of (repaired, locally stored) is newer - a concurrent
    // write-to-L2 may have landed during the repair round.  In durable mode
    // the repaired element is re-persisted by store(), and the server
    // announces its newest durable tag so acks lost to the pre-repair
    // downtime cannot stall deferred durable acks at L1 (liveness).
    if (tag > object(obj).tag) store(obj, tag, std::move(*element));
    if (ctx_->durable_acks) broadcast_durable_ack(obj, object(obj).tag);
    auto done = std::move(rep.done);
    repairs_.erase(obj);
    if (done) done(tag);
    return;
  }
  // No d-sized common-tag subset: a write-to-L2 was in flight.  Retry.
  start_repair_round(obj);
}

// ---- message handling ----------------------------------------------------------

void ServerL2::on_message(NodeId from, const net::MessagePtr& msg) {
  // Heartbeats from the repair manager: reply and return (not part of the
  // Fig. 3 protocol; kept outside the LDS message variant on purpose).
  if (const auto* ping = dynamic_cast<const HeartbeatPing*>(msg.get())) {
    send(from, std::make_shared<HeartbeatPong>(ping->seq()));
    return;
  }
  const auto* m = dynamic_cast<const LdsMessage*>(msg.get());
  LDS_CHECK(m != nullptr, "ServerL2: non-LDS message");
  const ObjectId obj = m->obj();
  const OpId op = m->op();

  if (const auto* w = std::get_if<WriteCodeElem>(&m->body())) {
    // write-to-L2-resp (Fig. 3 line 3): replace iff the incoming tag is
    // strictly newer; ACK in all cases — except when durability was
    // requested and the disk refused, in which case staying silent makes
    // this an ordinary omission failure within the f2 budget.
    if (w->tag > object(obj).tag && !store(obj, w->tag, w->element)) return;
    send(from, LdsMessage::make(obj, op, AckCodeElem{w->tag}));
    return;
  }

  if (const auto* q = std::get_if<QueryCodeElem>(&m->body())) {
    // regenerate-from-L2-resp (Fig. 3 line 7): helper data for coordinate
    // `target_index`, computed from the locally stored element alone.  The
    // same action serves both L1 regenerations and L2 peer repairs.
    const ObjectState& st = object(obj);
    Bytes h = ctx_->code.helper_data(code_index(), st.element,
                                     q->target_index);
    send(from, LdsMessage::make(obj, op, SendHelperElem{st.tag, std::move(h)}));
    return;
  }

  if (const auto* h = std::get_if<SendHelperElem>(&m->body())) {
    // Helper response for one of this server's own repair rounds.
    auto oit = repair_ops_.find(op);
    if (oit == repair_ops_.end()) return;  // stale round
    const ObjectId robj = oit->second;
    auto rit = repairs_.find(robj);
    if (rit == repairs_.end()) return;
    int l2_index = -1;
    for (std::size_t i = 0; i < ctx_->l2_ids.size(); ++i) {
      if (ctx_->l2_ids[i] == from) {
        l2_index = static_cast<int>(i);
        break;
      }
    }
    LDS_CHECK(l2_index >= 0, "ServerL2 repair: helper not an L2 peer");
    Repair& rep = rit->second;
    rep.helpers.push_back(
        Repair::Helper{h->tag, l2_index, h->helper});
    // Wait for f2 + d - 1 of the n2 - 1 peers (the replacement itself may
    // be the f2-th failure, so only f2 - 1 peers can still be down).
    if (++rep.responses == ctx_->regen_wait() - 1) {
      finish_repair_round(robj, op);
    }
    return;
  }

  LDS_CHECK(false, "ServerL2: unexpected message type");
}

}  // namespace lds::core
