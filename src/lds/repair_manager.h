// Automated back-end repair: failure detection + repair orchestration.
//
// The paper's Section-VI future work asks for repair of erasure-coded L2
// servers; ServerL2::repair_object gives the mechanism, this module adds
// the policy layer a deployment needs:
//
//   * a heartbeat-based failure detector for L2 servers (sound under the
//     bounded-latency model of Section V-A: a server is suspected only
//     after `suspect_after` time units without a heartbeat response, so
//     with fixed delays <= tau2 a timeout > 2 tau2 + period never falsely
//     suspects an alive server);
//   * an orchestrator that, upon suspicion, asks the host environment to
//     replace the server (LdsCluster::replace_l2) and then drives
//     repair_object for every registered object on the replacement,
//     re-trying objects whose repair round reports failure.
//
// The manager is itself a node on the simulated network, so its messages
// ride the same channels and cost accounting as everything else (heartbeats
// are pure meta-data).
#pragma once

#include <atomic>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "lds/context.h"
#include "lds/heartbeat.h"
#include "lds/messages.h"
#include "lds/server_l2.h"
#include "net/network.h"

namespace lds::core {

class RepairManager final : public net::Node {
 public:
  struct Options {
    double heartbeat_period = 5.0;  ///< ping interval (tau1 units)
    double suspect_after = 25.0;    ///< silence before declaring a crash
    NodeId node_id = 40000;
    /// Optional concurrency gate (store::RepairScheduler): consulted with
    /// the victim's index before the replacement is requested; while it
    /// returns false the manager re-asks every `budget_retry` time units.
    /// `release_slot` fires when that server's repair finishes.
    std::function<bool(std::size_t)> acquire_slot;
    std::function<void(std::size_t)> release_slot;
    double budget_retry = 2.0;
    /// Backoff before re-running a repair round that failed (i.e. raced
    /// concurrent write-to-L2 traffic); the object is retried rather than
    /// left unregenerated on the replacement.
    double object_retry = 5.0;
    /// Fires once per repaired server, after every tracked object has been
    /// regenerated on its replacement.
    std::function<void(std::size_t)> on_server_repaired;
  };

  /// `replace` is the environment hook that swaps in a fresh server process
  /// for L2 index i and returns a reference to it (LdsCluster::replace_l2 +
  /// l2(i)).  `objects` is the set of objects whose contents the
  /// replacement must regenerate.
  using ReplaceFn = std::function<ServerL2&(std::size_t l2_index)>;

  RepairManager(net::Network& net, std::shared_ptr<const LdsContext> ctx,
                Options opt, ReplaceFn replace);

  /// Register an object for repair coverage (typically every object the
  /// deployment serves).
  void track_object(ObjectId obj) { objects_.insert(obj); }

  /// Start the heartbeat loop.
  void start();
  void stop() { running_ = false; }

  void on_message(NodeId from, const net::MessagePtr& msg) override;

  // ---- introspection --------------------------------------------------------
  // Counters are atomics mirroring lane-local state so that a store-level
  // quiescence poll (store::RepairScheduler::quiet) may read them from
  // another thread while this manager's lane keeps executing.
  std::size_t suspected_count() const {
    return suspected_size_.load(std::memory_order_acquire);
  }
  bool is_suspected(std::size_t l2_index) const {
    return suspected_.contains(l2_index);  // lane-local readers only
  }
  /// Object-repair rounds attempted / converged / failed-and-retried.
  std::size_t repairs_started() const {
    return repairs_started_.load(std::memory_order_relaxed);
  }
  std::size_t repairs_completed() const {
    return repairs_completed_.load(std::memory_order_relaxed);
  }
  std::size_t repairs_failed() const {
    return repairs_failed_.load(std::memory_order_relaxed);
  }

 private:
  void tick();
  void suspect(std::size_t l2_index);
  /// Claim a budget slot (retrying while the gate refuses), then replace
  /// the server and regenerate its objects.
  void begin_repair(std::size_t l2_index);
  void repair_next_object(std::size_t l2_index, ServerL2* server,
                          std::vector<ObjectId> remaining);

  std::shared_ptr<const LdsContext> ctx_;
  Options opt_;
  ReplaceFn replace_;
  bool running_ = false;
  std::uint64_t seq_ = 0;
  std::set<ObjectId> objects_;
  std::unordered_map<std::size_t, net::SimTime> last_seen_;  // by L2 index
  std::set<std::size_t> suspected_;
  std::atomic<std::size_t> suspected_size_{0};  // == suspected_.size()
  std::atomic<std::size_t> repairs_started_{0};
  std::atomic<std::size_t> repairs_completed_{0};
  std::atomic<std::size_t> repairs_failed_{0};
};

}  // namespace lds::core
