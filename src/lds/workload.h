// Multi-object workload generator (paper, Section V-A.1).
//
// Drives a cluster's writer/reader pool as well-formed closed-loop clients:
// each client issues one operation at a time on a randomly selected object,
// waits for it to complete, thinks for an exponentially distributed gap, and
// repeats until the configured end time.  The concurrency parameter theta of
// Lemma V.5 (concurrent extended writes per tau1) is then governed by the
// number of writers and their think-time/latency ratio, which the caller can
// read back from WorkloadStats.
#pragma once

#include <cstddef>

#include "lds/cluster.h"

namespace lds::core {

struct WorkloadOptions {
  std::size_t num_objects = 1;
  /// Operations are issued from the current simulation time until now+duration
  /// (in simulation time units = tau1); in-flight operations then finish.
  double duration = 100.0;
  /// Mean exponential think time between a client's operations (0 = back to
  /// back).
  double write_think_mean = 0.0;
  double read_think_mean = 0.0;
  /// Use all writers / readers of the cluster?  Counts are capped by the
  /// cluster's pools.
  std::size_t writers = SIZE_MAX;
  std::size_t readers = 0;
  std::size_t value_size = 100;
  std::uint64_t seed = 1;
};

struct WorkloadStats {
  std::size_t writes_completed = 0;
  std::size_t reads_completed = 0;
  double span = 0;  ///< simulated time from start to quiescence
  /// Measured theta: completed writes * extended-write-duration-bound /
  /// span / tau1 is left to the caller; this reports raw rate writes/tau1.
  double writes_per_tau1 = 0;
};

/// Runs the workload to quiescence (all issued operations complete).
WorkloadStats run_workload(LdsCluster& cluster, const WorkloadOptions& opt);

}  // namespace lds::core
