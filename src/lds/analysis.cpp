#include "lds/analysis.h"

#include <algorithm>
#include <cmath>

namespace lds::core::analysis {

double mbr_beta_frac(std::size_t k, std::size_t d) {
  return 2.0 / (static_cast<double>(k) * (2.0 * static_cast<double>(d) -
                                          static_cast<double>(k) + 1.0));
}

double mbr_alpha_frac(std::size_t k, std::size_t d) {
  return static_cast<double>(d) * mbr_beta_frac(k, d);
}

double write_cost(std::size_t n1, std::size_t n2, std::size_t k,
                  std::size_t d) {
  return static_cast<double>(n1) +
         static_cast<double>(n1) * static_cast<double>(n2) *
             mbr_alpha_frac(k, d);
}

double read_cost(std::size_t n1, std::size_t n2, std::size_t k, std::size_t d,
                 bool delta_positive) {
  const double base = static_cast<double>(n1) *
                      (1.0 + static_cast<double>(n2) / static_cast<double>(d)) *
                      mbr_alpha_frac(k, d);
  return base + (delta_positive ? static_cast<double>(n1) : 0.0);
}

double l2_storage_per_object(std::size_t n2, std::size_t k, std::size_t d) {
  return static_cast<double>(n2) * mbr_alpha_frac(k, d);
}

double msr_storage_per_object(std::size_t n2, std::size_t k) {
  return static_cast<double>(n2) / static_cast<double>(k);
}

double rs_read_cost(std::size_t n1, std::size_t k, bool delta_positive) {
  return static_cast<double>(n1) * (1.0 + 1.0 / static_cast<double>(k)) +
         (delta_positive ? static_cast<double>(n1) : 0.0);
}

double write_latency_bound(double tau1, double tau0) {
  return 4.0 * tau1 + 2.0 * tau0;
}

double extended_write_latency_bound(double tau1, double tau0, double tau2) {
  return std::max(3.0 * tau1 + 2.0 * tau0 + 2.0 * tau2,
                  4.0 * tau1 + 2.0 * tau0);
}

double read_latency_bound(double tau1, double tau0, double tau2) {
  return std::max(6.0 * tau1 + 2.0 * tau2, 6.0 * tau1 + 2.0 * tau0 + tau2);
}

double l1_storage_bound(double theta, std::size_t n1, double mu) {
  return std::ceil(5.0 + 2.0 * mu) * theta * static_cast<double>(n1);
}

double l2_storage_multi(std::size_t num_objects, std::size_t n2,
                        std::size_t k) {
  return 2.0 * static_cast<double>(num_objects) * static_cast<double>(n2) /
         (static_cast<double>(k) + 1.0);
}

}  // namespace lds::core::analysis
