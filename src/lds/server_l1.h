// The L1 (edge) server automaton: all nine actions of Fig. 2 of the paper.
//
// Per-object state (the paper describes a single object; a multi-object
// deployment runs independent instances, which we realize as per-ObjectId
// state on the same node):
//
//   L   - the temporary list of (tag, value-or-bot) pairs, initially
//         {(t0, bot)};
//   Gamma - registered outstanding readers (reader, read-op, treq);
//   tc  - the committed tag, initially t0;
//   commitCounter / writeCounter / readCounter - per-tag and per-read
//         counters backing the broadcast-resp, write-to-L2-complete and
//         regenerate-from-L2-complete actions;
//   K   - helper-data accumulator for in-flight regenerations, keyed by the
//         read operation id.
//
// The broadcast primitive (Section III, from [17]) is folded into this node:
// on the *first* receipt of a COMMIT-TAG instance, a server belonging to the
// fixed relay set S_{f1+1} forwards it to all of L1 before consuming it;
// every server consumes each instance exactly once (dedup by bcast_id).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lds/context.h"
#include "lds/messages.h"
#include "net/network.h"

namespace lds::core {

class ServerL1 final : public net::Node {
 public:
  /// `index` is this server's position in L1 (== its code coordinate).
  ServerL1(net::Network& net, std::shared_ptr<const LdsContext> ctx,
           std::size_t index);

  std::size_t index() const { return index_; }

  void on_message(NodeId from, const net::MessagePtr& msg) override;

  /// Durable-recovery seeding (cluster construction, before any traffic):
  /// initialize this object as if write `t` committed and offloaded — list
  /// {(t0, bot), (t, bot)}, tc = t, durable watermark t.  Guarantees every
  /// post-restart write tag exceeds t and every read returns at least t.
  void recover_committed(ObjectId obj, Tag t);

  // ---- introspection for tests and the storage meter -----------------------

  /// Committed tag tc of one object (t0 if the object was never touched).
  Tag committed_tag(ObjectId obj) const;
  /// Tags present in the list L (keys; values may be bot).
  std::vector<Tag> list_tags(ObjectId obj) const;
  /// True iff the list holds an actual value for `t`.
  bool has_value(ObjectId obj, Tag t) const;
  /// Number of registered readers of one object.
  std::size_t registered_readers(ObjectId obj) const;
  /// Total bytes of values currently held for all objects (temporary cost).
  std::uint64_t stored_value_bytes() const { return value_bytes_; }

 private:
  struct GammaEntry {
    NodeId reader = kNoNode;
    OpId op = kNoOp;
    Tag treq;
  };

  struct Regen {
    NodeId reader = kNoNode;
    Tag treq;
    std::size_t responses = 0;
    // (tag, helper payload, helper's L2 index) triples received so far.
    struct Helper {
      Tag tag;
      int l2_index;
      Bytes payload;
    };
    std::vector<Helper> helpers;
  };

  /// Durable mode: an ACK held back until the tag's offload is L2-durable.
  struct DeferredAck {
    NodeId to = kNoNode;
    OpId op = kNoOp;
    bool put_tag = false;  ///< PutTagAck (reader) vs WriteAck (writer)
  };

  struct ObjectState {
    // L: ordered map tag -> optional value; nullopt encodes bot.  Values are
    // shared handles: the entry references the same buffer the PUT-DATA
    // message (and every peer server's entry) carries.
    std::map<Tag, std::optional<Value>> list;
    Tag tc = kTag0;
    std::vector<GammaEntry> gamma;
    std::map<Tag, std::size_t> commit_counter;
    std::set<Tag> acked;             // writer-ACK sent (or deferred)
    std::map<Tag, OpId> tag_op;      // originating write op per tag
    std::map<Tag, std::size_t> write_counter;  // ACK-CODE-ELEM counts
    std::unordered_map<OpId, Regen> regen;     // K, keyed by read op
    // Durable mode only: the local durability watermark (max tag whose
    // offload reached an l2_quorum of acks here), offload dedup, and the
    // acks waiting for the watermark to pass their tag.
    Tag durable_tag = kTag0;
    std::set<Tag> offload_sent;
    std::multimap<Tag, DeferredAck> deferred;
    bool initialized = false;
  };

  ObjectState& object(ObjectId obj);

  /// Send WriteAck now, or defer it (durable mode, tag not yet durable).
  /// Marks the tag acked either way.
  void ack_writer(ObjectState& st, ObjectId obj, OpId op, Tag tag,
                  NodeId writer);
  /// Send every deferred ack whose tag is now <= the durable watermark.
  void flush_deferred(ObjectId obj);

  // Fig. 2 actions.
  void get_tag_resp(ObjectId obj, OpId op, NodeId writer);
  void put_data_resp(ObjectId obj, OpId op, NodeId writer, const PutData& m);
  void broadcast_resp(ObjectId obj, OpId op, const CommitTag& m);
  void write_to_l2(ObjectId obj, OpId op, Tag tag, const Value& value);
  void write_to_l2_complete(ObjectId obj, const AckCodeElem& m);
  void get_committed_tag_resp(ObjectId obj, OpId op, NodeId reader);
  void get_data_resp(ObjectId obj, OpId op, NodeId reader, const QueryData& m);
  void regenerate_from_l2(ObjectId obj, OpId op, NodeId reader, Tag treq);
  void regenerate_complete(ObjectId obj, OpId op, const SendHelperElem& m,
                           NodeId from);
  void put_tag_resp(ObjectId obj, OpId op, NodeId reader, const PutTag& m);

  // Shared commit machinery: advance tc to `t`, serve registered readers
  // whose treq <= tc with (t_served, value), garbage-collect tags < tc, and
  // optionally launch write-to-L2.  Used by broadcast-resp and put-tag-resp.
  void commit_tag(ObjectId obj, OpId op, Tag t);

  /// Serve and unregister every gamma entry with treq <= t (value known).
  void serve_registered(ObjectId obj, Tag t, const Value& value);

  /// Replace (t', v) with (t', bot) for every t' < tc (Fig. 2 lines 18, 65).
  void garbage_collect(ObjectId obj);

  // List mutation helpers that keep the storage gauge consistent.
  void list_put(ObjectState& st, Tag t, std::optional<Value> v);
  void list_blank(ObjectState& st, Tag t);

  void bcast_commit(ObjectId obj, OpId op, Tag tag);

  std::shared_ptr<const LdsContext> ctx_;
  std::size_t index_;
  std::unordered_map<ObjectId, ObjectState> objects_;
  std::unordered_set<std::uint64_t> seen_bcasts_;
  std::uint32_t bcast_seq_ = 0;
  std::uint64_t value_bytes_ = 0;
};

}  // namespace lds::core
