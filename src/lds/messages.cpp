#include "lds/messages.h"

#include "net/codec.h"

namespace lds::core {

std::uint64_t LdsMessage::meta_bytes() const {
  // Exact by construction: everything in the encoded frame that is not the
  // data payload is meta-data (header, tags, ids, counters, length fields).
  return net::codec::encoded_size(*this) - data_bytes();
}

}  // namespace lds::core
