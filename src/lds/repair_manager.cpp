#include "lds/repair_manager.h"

namespace lds::core {

RepairManager::RepairManager(net::Network& net,
                             std::shared_ptr<const LdsContext> ctx,
                             Options opt, ReplaceFn replace)
    : Node(net, opt.node_id, Role::Other),
      ctx_(std::move(ctx)),
      opt_(opt),
      replace_(std::move(replace)) {
  LDS_REQUIRE(opt_.heartbeat_period > 0 && opt_.suspect_after > 0,
              "RepairManager: timings must be positive");
  LDS_REQUIRE(replace_ != nullptr, "RepairManager: null replace hook");
}

void RepairManager::start() {
  if (running_) return;
  running_ = true;
  const net::SimTime now = net_.sim().now();
  for (std::size_t i = 0; i < ctx_->l2_ids.size(); ++i) last_seen_[i] = now;
  tick();
}

void RepairManager::tick() {
  if (!running_ || crashed()) return;
  const net::SimTime now = net_.sim().now();

  // Suspect servers that have been silent too long.
  for (std::size_t i = 0; i < ctx_->l2_ids.size(); ++i) {
    if (suspected_.contains(i)) continue;
    if (now - last_seen_[i] > opt_.suspect_after) suspect(i);
  }

  // Ping everyone (crashed destinations silently drop).
  ++seq_;
  for (std::size_t i = 0; i < ctx_->l2_ids.size(); ++i) {
    if (suspected_.contains(i)) continue;
    send(ctx_->l2_ids[i], std::make_shared<HeartbeatPing>(seq_));
  }

  net_.sim().after(opt_.heartbeat_period, [this] { tick(); });
}

void RepairManager::suspect(std::size_t l2_index) {
  suspected_.insert(l2_index);
  suspected_size_.store(suspected_.size(), std::memory_order_release);
  begin_repair(l2_index);
}

void RepairManager::begin_repair(std::size_t l2_index) {
  // Deliberately no running_ check: a repair that was already promised
  // (the server is suspected and excluded from heartbeats) must finish even
  // across a stop()/start() cycle, or the server would stay suspected with
  // nobody left to rebuild it.
  if (crashed()) return;
  if (opt_.acquire_slot && !opt_.acquire_slot(l2_index)) {
    // Budget exhausted (or the gate vetoed this victim for now): the server
    // stays suspected — excluded from heartbeats — and we re-ask later.
    net_.sim().after(opt_.budget_retry,
                     [this, l2_index] { begin_repair(l2_index); });
    return;
  }
  // Ask the environment for a fresh replacement process (exactly once),
  // then regenerate every tracked object on it, one at a time (sequential
  // repair keeps the helper load on the surviving servers bounded).
  ServerL2& fresh = replace_(l2_index);
  std::vector<ObjectId> remaining(objects_.begin(), objects_.end());
  repair_next_object(l2_index, &fresh, std::move(remaining));
}

void RepairManager::repair_next_object(std::size_t l2_index,
                                       ServerL2* server,
                                       std::vector<ObjectId> remaining) {
  if (remaining.empty()) {
    // Replacement fully restored: resume heartbeat coverage.
    suspected_.erase(l2_index);
    suspected_size_.store(suspected_.size(), std::memory_order_release);
    last_seen_[l2_index] = net_.sim().now();
    if (opt_.release_slot) opt_.release_slot(l2_index);
    if (opt_.on_server_repaired) opt_.on_server_repaired(l2_index);
    return;
  }
  const ObjectId obj = remaining.back();
  remaining.pop_back();
  ++repairs_started_;
  server->repair_object(
      obj, [this, l2_index, server, obj,
            remaining = std::move(remaining)](std::optional<Tag> tag) mutable {
        if (tag.has_value()) {
          ++repairs_completed_;
          repair_next_object(l2_index, server, std::move(remaining));
          return;
        }
        // Every round raced concurrent write-to-L2 traffic; retry this
        // object after a backoff instead of leaving the replacement without
        // its data (the server stays suspected, so the failure budget still
        // accounts for it).
        ++repairs_failed_;
        remaining.push_back(obj);
        net_.sim().after(
            opt_.object_retry,
            [this, l2_index, server, remaining = std::move(remaining)]() mutable {
              repair_next_object(l2_index, server, std::move(remaining));
            });
      });
}

void RepairManager::on_message(NodeId from, const net::MessagePtr& msg) {
  const auto* pong = dynamic_cast<const HeartbeatPong*>(msg.get());
  if (pong == nullptr) return;  // ignore anything else
  for (std::size_t i = 0; i < ctx_->l2_ids.size(); ++i) {
    if (ctx_->l2_ids[i] == from) {
      last_seen_[i] = net_.sim().now();
      return;
    }
  }
}

}  // namespace lds::core
