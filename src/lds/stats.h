// Operation statistics computed from a recorded History: latency
// percentiles per operation kind and a formatted report.  Used by the CLI
// driver and by tests that check the Lemma V.4 bounds across whole
// workloads rather than single operations.
#pragma once

#include <string>

#include "lds/history.h"

namespace lds::core {

struct LatencyStats {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double min = 0;
  double max = 0;
};

/// Latency distribution of completed operations of one kind (all objects).
LatencyStats latency_stats(const History& history, OpKind kind);

/// Two-row human-readable report (writes / reads).
std::string format_latency_report(const History& history);

}  // namespace lds::core
