#include "lds/server_l1.h"

#include <algorithm>

namespace lds::core {

ServerL1::ServerL1(net::Network& net, std::shared_ptr<const LdsContext> ctx,
                   std::size_t index)
    : Node(net, ctx->l1_ids.at(index), Role::ServerL1),
      ctx_(std::move(ctx)),
      index_(index) {}

ServerL1::ObjectState& ServerL1::object(ObjectId obj) {
  auto it = objects_.find(obj);
  if (it == objects_.end()) {
    ObjectState st;
    st.list.emplace(kTag0, std::nullopt);  // L initially {(t0, bot)}
    st.tc = kTag0;
    st.initialized = true;
    it = objects_.emplace(obj, std::move(st)).first;
  }
  return it->second;
}

void ServerL1::recover_committed(ObjectId obj, Tag t) {
  LDS_REQUIRE(!objects_.contains(obj),
              "recover_committed: object already has traffic");
  ObjectState st;
  st.list.emplace(kTag0, std::nullopt);
  if (t > kTag0) st.list.emplace(t, std::nullopt);
  st.tc = t;
  st.durable_tag = t;
  st.initialized = true;
  objects_.emplace(obj, std::move(st));
}

// ---- durable-ack machinery --------------------------------------------------

void ServerL1::ack_writer(ObjectState& st, ObjectId obj, OpId op, Tag tag,
                          NodeId writer) {
  if (st.acked.contains(tag)) return;
  st.acked.insert(tag);
  if (ctx_->durable_acks && st.durable_tag < tag) {
    st.deferred.emplace(tag, DeferredAck{writer, op, false});
    return;
  }
  send(writer, LdsMessage::make(obj, op, WriteAck{tag}));
}

void ServerL1::flush_deferred(ObjectId obj) {
  ObjectState& st = object(obj);
  auto it = st.deferred.begin();
  while (it != st.deferred.end() && it->first <= st.durable_tag) {
    const DeferredAck& d = it->second;
    if (d.put_tag) {
      send(d.to, LdsMessage::make(obj, d.op, PutTagAck{}));
    } else {
      send(d.to, LdsMessage::make(obj, d.op, WriteAck{it->first}));
    }
    it = st.deferred.erase(it);
  }
}

// ---- introspection ----------------------------------------------------------

Tag ServerL1::committed_tag(ObjectId obj) const {
  auto it = objects_.find(obj);
  return it == objects_.end() ? kTag0 : it->second.tc;
}

std::vector<Tag> ServerL1::list_tags(ObjectId obj) const {
  std::vector<Tag> out;
  auto it = objects_.find(obj);
  if (it == objects_.end()) return {kTag0};
  for (const auto& [t, v] : it->second.list) out.push_back(t);
  return out;
}

bool ServerL1::has_value(ObjectId obj, Tag t) const {
  auto it = objects_.find(obj);
  if (it == objects_.end()) return false;
  auto lit = it->second.list.find(t);
  return lit != it->second.list.end() && lit->second.has_value();
}

std::size_t ServerL1::registered_readers(ObjectId obj) const {
  auto it = objects_.find(obj);
  return it == objects_.end() ? 0 : it->second.gamma.size();
}

// ---- list mutation with storage accounting ----------------------------------

void ServerL1::list_put(ObjectState& st, Tag t, std::optional<Value> v) {
  auto it = st.list.find(t);
  if (it != st.list.end()) {
    const std::uint64_t old_bytes =
        it->second.has_value() ? it->second->size() : 0;
    const std::uint64_t new_bytes = v.has_value() ? v->size() : 0;
    it->second = std::move(v);
    value_bytes_ += new_bytes;
    value_bytes_ -= old_bytes;
    if (ctx_->meter) {
      ctx_->meter->add_l1(new_bytes);
      ctx_->meter->sub_l1(old_bytes);
    }
    return;
  }
  const std::uint64_t new_bytes = v.has_value() ? v->size() : 0;
  st.list.emplace(t, std::move(v));
  value_bytes_ += new_bytes;
  if (ctx_->meter && new_bytes) ctx_->meter->add_l1(new_bytes);
}

void ServerL1::list_blank(ObjectState& st, Tag t) {
  auto it = st.list.find(t);
  if (it == st.list.end() || !it->second.has_value()) return;
  const std::uint64_t old_bytes = it->second->size();
  it->second.reset();
  value_bytes_ -= old_bytes;
  if (ctx_->meter) ctx_->meter->sub_l1(old_bytes);
}

// ---- dispatch ----------------------------------------------------------------

void ServerL1::on_message(NodeId from, const net::MessagePtr& msg) {
  const auto* m = dynamic_cast<const LdsMessage*>(msg.get());
  LDS_CHECK(m != nullptr, "ServerL1: non-LDS message");
  const ObjectId obj = m->obj();
  const OpId op = m->op();

  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, QueryTag>) {
          get_tag_resp(obj, op, from);
        } else if constexpr (std::is_same_v<T, PutData>) {
          put_data_resp(obj, op, from, body);
        } else if constexpr (std::is_same_v<T, CommitTag>) {
          // Broadcast primitive: consume each instance exactly once; relay
          // servers forward to all of L1 on first receipt, before consuming.
          if (seen_bcasts_.contains(body.bcast_id)) return;
          seen_bcasts_.insert(body.bcast_id);
          if (index_ < ctx_->relay_set_size()) {
            for (NodeId peer : ctx_->l1_ids) {
              send(peer, LdsMessage::make(obj, op, body));
            }
          }
          broadcast_resp(obj, op, body);
        } else if constexpr (std::is_same_v<T, AckCodeElem>) {
          write_to_l2_complete(obj, body);
        } else if constexpr (std::is_same_v<T, QueryCommTag>) {
          get_committed_tag_resp(obj, op, from);
        } else if constexpr (std::is_same_v<T, QueryData>) {
          get_data_resp(obj, op, from, body);
        } else if constexpr (std::is_same_v<T, SendHelperElem>) {
          regenerate_complete(obj, op, body, from);
        } else if constexpr (std::is_same_v<T, PutTag>) {
          put_tag_resp(obj, op, from, body);
        } else if constexpr (std::is_same_v<T, UnregisterReader>) {
          ObjectState& st = object(obj);
          st.gamma.erase(std::remove_if(st.gamma.begin(), st.gamma.end(),
                                        [&](const GammaEntry& g) {
                                          return g.reader == from &&
                                                 g.op == op;
                                        }),
                         st.gamma.end());
        } else {
          LDS_CHECK(false, "ServerL1: unexpected message type");
        }
      },
      m->body());
}

// ---- Fig. 2 actions -----------------------------------------------------------

void ServerL1::get_tag_resp(ObjectId obj, OpId op, NodeId writer) {
  // Fig. 2 line 3: reply with max{t : (t, *) in L} (bot entries count -
  // they witness tags of garbage-collected or offloaded writes).
  ObjectState& st = object(obj);
  LDS_CHECK(!st.list.empty(), "ServerL1: empty list");
  send(writer, LdsMessage::make(obj, op, TagResp{st.list.rbegin()->first}));
}

void ServerL1::put_data_resp(ObjectId obj, OpId op, NodeId writer,
                             const PutData& m) {
  ObjectState& st = object(obj);
  // Fig. 2 line 6: broadcast COMMIT-TAG before anything else.
  bcast_commit(obj, op, m.tag);
  st.tag_op.emplace(m.tag, op);
  if (m.tag > st.tc) {
    list_put(st, m.tag, m.value);
    // The ACK is deferred to broadcast-resp (>= f1+k COMMIT-TAGs).
  } else {
    // An older (possibly garbage-collected) tag.  Durable mode: the tag
    // may have committed via the valueless put-tag path (Fig. 2 lines
    // 62-65), which never offloads — and a deferred ack would then wait
    // forever.  This server holds the value right here, so offload it
    // (once) before acking; ack_writer defers until it is durable.
    if (ctx_->durable_acks && st.durable_tag < m.tag &&
        !st.offload_sent.contains(m.tag)) {
      write_to_l2(obj, op, m.tag, m.value);
    }
    ack_writer(st, obj, op, m.tag, writer);
  }
}

void ServerL1::bcast_commit(ObjectId obj, OpId op, Tag tag) {
  const std::uint64_t bcast_id =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id())) << 32) |
      bcast_seq_++;
  const std::size_t relays = ctx_->relay_set_size();
  for (std::size_t j = 0; j < relays; ++j) {
    send(ctx_->l1_ids[j], LdsMessage::make(obj, op, CommitTag{tag, bcast_id}));
  }
}

void ServerL1::broadcast_resp(ObjectId obj, OpId op, const CommitTag& m) {
  ObjectState& st = object(obj);
  const std::size_t count = ++st.commit_counter[m.tag];
  // Fig. 2 line 13: requires the tag key in L *and* a quorum of COMMIT-TAGs.
  if (!st.list.contains(m.tag) || count < ctx_->cfg.l1_quorum()) return;
  // "send ACK to writer w of tag tin": the writer id is the tag's w field.
  // Durable mode holds the ack until write-to-L2-complete for this tag.
  ack_writer(st, obj, op, m.tag, m.tag.w);
  if (m.tag > st.tc) commit_tag(obj, op, m.tag);
}

void ServerL1::commit_tag(ObjectId obj, OpId op, Tag t) {
  // Fig. 2 lines 15-19 (also reached from put-tag-resp when the value is in
  // the list): update tc, serve registered readers, garbage-collect older
  // values, offload to L2.
  ObjectState& st = object(obj);
  st.tc = t;
  auto it = st.list.find(t);
  LDS_CHECK(it != st.list.end(), "commit_tag: tag not in list");
  if (!it->second.has_value()) {
    // The value was already offloaded and garbage-collected by an earlier
    // commit path; nothing to serve or offload.
    garbage_collect(obj);
    return;
  }
  // Handle copy (refcount bump): serving + GC may erase the list entry, but
  // the shared buffer outlives it.
  const Value value = *it->second;
  serve_registered(obj, t, value);
  garbage_collect(obj);
  // Attribute the internal write-to-L2 to the originating write operation
  // (Section II-d: write cost includes internal write-to-L2 costs).
  OpId write_op = op;
  if (auto oit = st.tag_op.find(t); oit != st.tag_op.end()) {
    write_op = oit->second;
  }
  write_to_l2(obj, write_op, t, value);
}

void ServerL1::serve_registered(ObjectId obj, Tag t, const Value& value) {
  ObjectState& st = object(obj);
  auto it = st.gamma.begin();
  while (it != st.gamma.end()) {
    if (t >= it->treq) {
      send(it->reader,
           LdsMessage::make(obj, it->op, DataRespValue{t, value}));
      it = st.gamma.erase(it);
    } else {
      ++it;
    }
  }
}

void ServerL1::garbage_collect(ObjectId obj) {
  ObjectState& st = object(obj);
  for (auto& [t, v] : st.list) {
    if (t < st.tc && v.has_value()) list_blank(st, t);
  }
}

void ServerL1::write_to_l2(ObjectId obj, OpId op, Tag tag,
                           const Value& value) {
  // Fig. 2 lines 20-23: encode with C2 and send each coordinate to its L2
  // server.  The element for L2 server i is coordinate n1 + i of C.
  object(obj).offload_sent.insert(tag);
  const auto& elems = ctx_->encoded_elements(obj, tag, value);
  const std::size_t n1 = ctx_->cfg.n1;
  for (std::size_t i = 0; i < ctx_->cfg.n2; ++i) {
    send(ctx_->l2_ids[i],
         LdsMessage::make(obj, op, WriteCodeElem{tag, elems[n1 + i]}));
  }
}

void ServerL1::write_to_l2_complete(ObjectId obj, const AckCodeElem& m) {
  // Fig. 2 lines 24-27: after n2 - f2 ACKs the offload is durable in L2;
  // garbage-collect the temporary copy.  Proxy-cache extension: keep the
  // value if it is still the committed (newest) one, so reads are served
  // from the edge without an L2 round trip.
  ObjectState& st = object(obj);
  const std::size_t count = ++st.write_counter[m.tag];
  if (count != ctx_->cfg.l2_quorum()) return;
  if (ctx_->durable_acks && m.tag > st.durable_tag) {
    // The durability watermark is monotone: a quorum for tag t certifies
    // every tag <= t (L2 servers keep the newest tag), so all deferred
    // acks at or below t can go out.
    st.durable_tag = m.tag;
    flush_deferred(obj);
  }
  if (ctx_->cfg.proxy_cache && m.tag == st.tc) return;
  list_blank(st, m.tag);
}

void ServerL1::get_committed_tag_resp(ObjectId obj, OpId op, NodeId reader) {
  send(reader, LdsMessage::make(obj, op, CommTagResp{object(obj).tc}));
}

void ServerL1::get_data_resp(ObjectId obj, OpId op, NodeId reader,
                             const QueryData& m) {
  ObjectState& st = object(obj);
  // Fig. 2 lines 30-38.
  if (auto it = st.list.find(m.treq);
      it != st.list.end() && it->second.has_value()) {
    send(reader, LdsMessage::make(obj, op, DataRespValue{m.treq, *it->second}));
    return;
  }
  if (st.tc > m.treq) {
    if (auto it = st.list.find(st.tc);
        it != st.list.end() && it->second.has_value()) {
      send(reader,
           LdsMessage::make(obj, op, DataRespValue{st.tc, *it->second}));
      return;
    }
  }
  st.gamma.push_back(GammaEntry{reader, op, m.treq});
  regenerate_from_l2(obj, op, reader, m.treq);
}

void ServerL1::regenerate_from_l2(ObjectId obj, OpId op, NodeId reader,
                                  Tag treq) {
  ObjectState& st = object(obj);
  LDS_CHECK(!st.regen.contains(op), "regenerate_from_l2: duplicate read op");
  st.regen.emplace(op, Regen{reader, treq, 0, {}});
  for (NodeId l2 : ctx_->l2_ids) {
    send(l2, LdsMessage::make(
                 obj, op, QueryCodeElem{static_cast<int>(index_)}));
  }
}

void ServerL1::regenerate_complete(ObjectId obj, OpId op,
                                   const SendHelperElem& m, NodeId from) {
  ObjectState& st = object(obj);
  auto it = st.regen.find(op);
  if (it == st.regen.end()) return;  // late helper after regeneration ended
  Regen& rg = it->second;
  // Map the sender to its L2 index (= code coordinate - n1).
  int l2_index = -1;
  for (std::size_t i = 0; i < ctx_->l2_ids.size(); ++i) {
    if (ctx_->l2_ids[i] == from) {
      l2_index = static_cast<int>(i);
      break;
    }
  }
  LDS_CHECK(l2_index >= 0, "regenerate_complete: helper not an L2 server");
  rg.helpers.push_back(Regen::Helper{m.tag, l2_index, m.helper});
  if (++rg.responses < ctx_->regen_wait()) return;

  // Fig. 2 lines 45-51: attempt to regenerate the highest tag with >= d
  // helper responses on a common tag; K[r] is cleared either way.
  const Regen done = std::move(rg);
  st.regen.erase(it);

  // Has this reader's registration survived (i.e. was it not already served
  // via a commit)?  If it was served, the server stays silent.
  const bool registered =
      std::any_of(st.gamma.begin(), st.gamma.end(), [&](const GammaEntry& g) {
        return g.reader == done.reader && g.op == op;
      });
  if (!registered) return;

  std::map<Tag, std::vector<codes::IndexedBytes>> by_tag;
  for (const auto& h : done.helpers) {
    by_tag[h.tag].emplace_back(static_cast<int>(ctx_->cfg.n1) + h.l2_index,
                               h.payload);
  }
  const std::size_t need = ctx_->code.d();
  Tag regen_tag = kTag0;
  std::optional<Bytes> element;
  for (auto rit = by_tag.rbegin(); rit != by_tag.rend(); ++rit) {
    if (rit->second.size() < need) continue;
    element = ctx_->code.repair_element(static_cast<int>(index_), rit->second);
    if (element) {
      regen_tag = rit->first;
      break;
    }
  }

  if (element && regen_tag >= done.treq) {
    send(done.reader,
         LdsMessage::make(obj, op,
                          DataRespCoded{regen_tag, static_cast<int>(index_),
                                        std::move(*element)}));
  } else {
    send(done.reader, LdsMessage::make(obj, op, DataRespNack{}));
  }
  // Per the paper, the reader remains registered: a later commit may still
  // serve it with a (tag, value) pair.
}

void ServerL1::put_tag_resp(ObjectId obj, OpId op, NodeId reader,
                            const PutTag& m) {
  ObjectState& st = object(obj);
  // Fig. 2 line 53: unregister gamma' = (r, treq) for this read operation.
  st.gamma.erase(
      std::remove_if(st.gamma.begin(), st.gamma.end(),
                     [&](const GammaEntry& g) {
                       return g.reader == reader && g.op == op;
                     }),
      st.gamma.end());

  if (m.tag > st.tc) {
    if (auto it = st.list.find(m.tag);
        it != st.list.end() && it->second.has_value()) {
      // The put-tag acts as a proxy for the commitCounter event of
      // broadcast-resp: commit, serve, garbage-collect and offload.
      commit_tag(obj, op, m.tag);
    } else {
      // Fig. 2 lines 62-65: first sighting of this tag; record it as
      // committed-but-valueless, serve whoever the best remaining value can
      // serve, then garbage-collect.
      st.tc = m.tag;
      list_put(st, m.tag, std::nullopt);
      Tag tbar = kTag0;
      const Value* vbar = nullptr;
      for (auto lit = st.list.rbegin(); lit != st.list.rend(); ++lit) {
        if (lit->first < st.tc && lit->second.has_value()) {
          tbar = lit->first;
          vbar = &*lit->second;
          break;
        }
      }
      if (vbar != nullptr) {
        const Value value = *vbar;  // handle copy: serving mutates gamma
        serve_registered(obj, tbar, value);
      }
      garbage_collect(obj);
    }
  }
  // Durable mode: a read must not complete while the tag it exposes could
  // still vanish with a SIGKILL; hold the ack until the offload is durable
  // here.  (The valueless-commit case cannot stall: the writer put-datas
  // ALL of L1, and whichever server still holds the value offloads it from
  // the put-data-resp older-tag branch.)
  if (ctx_->durable_acks && object(obj).durable_tag < m.tag) {
    object(obj).deferred.emplace(m.tag, DeferredAck{reader, op, true});
    return;
  }
  send(reader, LdsMessage::make(obj, op, PutTagAck{}));
}

}  // namespace lds::core
