#include "lds/writer.h"

namespace lds::core {

Writer::Writer(net::Network& net, std::shared_ptr<const LdsContext> ctx,
               NodeId id, History* history)
    : Node(net, id, Role::Writer), ctx_(std::move(ctx)), history_(history) {}

void Writer::send_to_l1(const LdsBody& body) {
  for (NodeId s : ctx_->l1_ids) {
    send(s, LdsMessage::make(obj_, op_, body));
  }
}

void Writer::write(ObjectId obj, Value value, Callback cb) {
  LDS_REQUIRE(!busy(), "Writer: client must be well-formed (one op at a time)");
  LDS_REQUIRE(!crashed(), "Writer: crashed client cannot invoke");
  phase_ = Phase::GetTag;
  op_ = make_op_id(id(), ++seq_);
  obj_ = obj;
  value_ = std::move(value);
  cb_ = std::move(cb);
  max_tag_ = kTag0;
  responders_.clear();
  if (history_ != nullptr) {
    history_index_ = history_->on_invoke(op_, OpKind::Write, obj_, id(),
                                         net_.sim().now());
  }
  send_to_l1(QueryTag{});
}

void Writer::on_message(NodeId from, const net::MessagePtr& msg) {
  const auto* m = dynamic_cast<const LdsMessage*>(msg.get());
  LDS_CHECK(m != nullptr, "Writer: non-LDS message");
  if (m->op() != op_) return;  // stale response from a previous operation
  const std::size_t quorum = ctx_->cfg.l1_quorum();  // f1 + k

  if (const auto* t = std::get_if<TagResp>(&m->body())) {
    // get-tag phase: await f1 + k responses, track the max tag.
    if (phase_ != Phase::GetTag) return;
    if (!responders_.insert(from).second) return;
    if (t->tag > max_tag_) max_tag_ = t->tag;
    if (responders_.size() < quorum) return;

    // put-data phase: new tag tw = (t.z + 1, w).
    phase_ = Phase::PutData;
    write_tag_ = Tag{max_tag_.z + 1, id()};
    responders_.clear();
    if (history_ != nullptr) {
      history_->set_payload(history_index_, write_tag_, value_);
    }
    send_to_l1(PutData{write_tag_, value_});
    return;
  }

  if (const auto* a = std::get_if<WriteAck>(&m->body())) {
    if (phase_ != Phase::PutData || a->tag != write_tag_) return;
    if (!responders_.insert(from).second) return;
    if (responders_.size() < quorum) return;

    // Terminate (Fig. 1 line 8).
    phase_ = Phase::Idle;
    if (history_ != nullptr) {
      history_->on_response(history_index_, net_.sim().now(), write_tag_,
                            value_);
    }
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(write_tag_);
    }
    return;
  }
}

}  // namespace lds::core
