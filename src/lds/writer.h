// The writer automaton: Fig. 1 (left) of the paper.
//
//   get-tag : QUERY-TAG to all of L1; await f1 + k TAG-RESPs; pick max t.
//   put-data: tw = (t.z + 1, w); PUT-DATA (tw, v) to all of L1; await
//             f1 + k WRITE-ACKs; terminate.
//
// Clients are well-formed: a new operation may only be issued after the
// previous one completed (enforced with LDS_REQUIRE).
#pragma once

#include <functional>
#include <unordered_set>

#include "lds/context.h"
#include "lds/messages.h"
#include "net/network.h"

namespace lds::core {

class Writer final : public net::Node {
 public:
  using Callback = std::function<void(Tag)>;

  Writer(net::Network& net, std::shared_ptr<const LdsContext> ctx, NodeId id,
         History* history = nullptr);

  /// Invoke a write operation (asynchronous; `cb` fires at the response
  /// step).  Requires no operation in progress.  The value is an immutable
  /// shared handle; Bytes arguments convert (moving, not copying).
  void write(ObjectId obj, Value value, Callback cb = {});

  bool busy() const { return phase_ != Phase::Idle; }
  std::uint32_t ops_started() const { return seq_; }

  void on_message(NodeId from, const net::MessagePtr& msg) override;

 private:
  enum class Phase { Idle, GetTag, PutData };

  void send_to_l1(const LdsBody& body);

  std::shared_ptr<const LdsContext> ctx_;
  History* history_;

  Phase phase_ = Phase::Idle;
  std::uint32_t seq_ = 0;
  OpId op_ = kNoOp;
  ObjectId obj_ = 0;
  Value value_;
  Callback cb_;
  std::size_t history_index_ = 0;
  Tag max_tag_;
  Tag write_tag_;
  std::unordered_set<NodeId> responders_;
};

}  // namespace lds::core
