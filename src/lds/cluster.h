// LdsCluster: one simulated LDS deployment wired end to end.
//
// Owns the simulator, the network, both server layers, a pool of writer and
// reader clients, the operation history and the storage meter.  This is the
// primary entry point of the library: examples, tests and benches build a
// cluster, schedule operations (synchronously or at chosen simulation times)
// and then inspect history, costs and storage.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "lds/context.h"
#include "lds/reader.h"
#include "lds/server_l1.h"
#include "lds/server_l2.h"
#include "lds/writer.h"
#include "net/network.h"
#include "storage/backend.h"

namespace lds::core {

class LdsCluster {
 public:
  enum class LatencyKind { Fixed, Uniform, Exponential };

  struct Options {
    LdsConfig cfg;
    std::size_t writers = 1;
    std::size_t readers = 1;
    /// Link delays (see latency.h); the simulation time unit is tau1.
    double tau1 = 1.0;
    double tau0 = 1.0;
    double tau2 = 10.0;
    LatencyKind latency = LatencyKind::Fixed;
    /// For Uniform: lower bound as a fraction of the class delay.
    double uniform_lo_frac = 0.1;
    std::uint64_t seed = 1;
    /// Consistency level of this cluster's readers (Atomic = the paper's
    /// LDS; Regular = the Section-VI extension without put-tag).
    ReadConsistency read_consistency = ReadConsistency::Atomic;
    /// Additional dedicated Regular-consistency readers (the store's
    /// ReadMode::Regular pool); 0 = none.  Their ids follow the atomic
    /// readers' block.  Histories mixing regular reads must be verified
    /// with History::check_regularity.
    std::size_t regular_readers = 0;
    /// Execution engine + lane this cluster schedules onto (see
    /// net/engine.h).  When null, the cluster owns a single-lane SimEngine.
    /// Under a ParallelEngine the whole cluster is confined to `lane`.
    /// The engine must outlive the cluster.
    net::Engine* engine = nullptr;
    std::size_t lane = 0;
    /// Legacy shorthand for "SimEngine over an external simulator": several
    /// clusters share one simulated time base.  Ignored when `engine` is
    /// set; the pointer must outlive the cluster.
    net::Simulator* sim = nullptr;
    /// Durable L2 mode: when non-empty, every L2 server opens a
    /// storage::DurableBackend under `<data_dir>/l2-<i>`, the cluster
    /// verifies a geometry MANIFEST against any previous incarnation, L1
    /// acks switch to durable timing (ctx.durable_acks), and construction
    /// runs the crash-recovery sweep (see recover_from_storage).  Empty
    /// (the default) keeps the cluster RAM-only and bit-identical to the
    /// pre-durability behavior.
    std::string data_dir;
    storage::DurabilityPolicy durability;
    /// Multi-process deployment (member subsystem): server indices whose
    /// NodeIds the membership view places in ANOTHER process.  Those servers
    /// are not constructed here — their ids stay addressable (the replaced
    /// transport routes frames to the hosting process) and the local slots
    /// hold nullptr until adopt_l1/adopt_l2 moves them home.  Requires a
    /// transport_factory; incompatible with durable mode (RAM-only for now).
    std::set<std::size_t> remote_l1;
    std::set<std::size_t> remote_l2;
    /// Replace the Network's transport right after construction (before any
    /// traffic): the member fabric installs its RemoteTransport here.
    std::function<std::unique_ptr<net::Transport>(net::Network&)>
        transport_factory;
  };

  explicit LdsCluster(Options opt);

  net::Engine& engine() { return *engine_; }
  std::size_t lane() const { return opt_.lane; }
  net::Simulator& sim() { return *sim_; }
  net::Network& net() { return *net_; }
  History& history() { return history_; }
  StorageMeter& meter() { return meter_; }
  const LdsContext& ctx() const { return *ctx_; }
  std::shared_ptr<const LdsContext> ctx_ptr() const { return ctx_; }
  const Options& options() const { return opt_; }

  Writer& writer(std::size_t i) { return *writers_.at(i); }
  Reader& reader(std::size_t i) { return *readers_.at(i); }
  Reader& regular_reader(std::size_t i) { return *regular_readers_.at(i); }
  ServerL1& l1(std::size_t j);
  ServerL2& l2(std::size_t i);
  std::size_t num_writers() const { return writers_.size(); }
  std::size_t num_readers() const { return readers_.size(); }

  /// True when server j/i is constructed in THIS process (false for slots a
  /// membership view places elsewhere).
  bool l1_local(std::size_t j) const { return l1_.at(j) != nullptr; }
  bool l2_local(std::size_t i) const { return l2_.at(i) != nullptr; }

  /// Membership surgery (view-change hooks; must run on the cluster's lane).
  /// release: destruct the local server — its id detaches from the Network
  /// and frames route to the process the new view places it in.  adopt: the
  /// mirror image — construct a FRESH server under the id (state-sync via
  /// repair_object follows, exactly the replace_l2 id-reuse path).
  void release_l1(std::size_t j);
  void release_l2(std::size_t i);
  ServerL1& adopt_l1(std::size_t j);
  ServerL2& adopt_l2(std::size_t i);

  void crash_l1(std::size_t j) { l1(j).crash(); }
  void crash_l2(std::size_t i) { l2(i).crash(); }

  /// Repair extension (paper, Section VI future work): replace L2 server i
  /// with a fresh, empty process under the same id, returning the
  /// replacement.  This is the ONE id-reuse helper — both the store's repair
  /// path (store::RepairScheduler via core::RepairManager) and ad-hoc churn
  /// (harness, tests) must go through it.  Call
  /// l2(i).repair_object(obj, ...) afterwards to regenerate its contents
  /// from the surviving peers.
  ServerL2& replace_l2(std::size_t i);

  /// Objects the construction-time recovery sweep restored (durable mode;
  /// empty on a fresh data_dir or in RAM mode), with the tag each recovered
  /// to.  Their synthetic writes are already in history().
  const std::vector<std::pair<ObjectId, Tag>>& recovered_objects() const {
    return recovered_objects_;
  }

  /// Schedule an operation invocation at simulation time t (>= now).
  void write_at(net::SimTime t, std::size_t writer_idx, ObjectId obj,
                Value value, Writer::Callback cb = {});
  void read_at(net::SimTime t, std::size_t reader_idx, ObjectId obj,
               Reader::Callback cb = {});

  /// Invoke a write now and run the simulation until it completes.
  /// Returns the tag it wrote.  Aborts if the simulation drains first.
  Tag write_sync(std::size_t writer_idx, ObjectId obj, Value value);

  /// Invoke a read now and run the simulation until it completes.
  std::pair<Tag, Value> read_sync(std::size_t reader_idx, ObjectId obj);

  /// Run until no events remain; returns events executed.  With an external
  /// simulator this drains the *shared* queue, i.e. every attached cluster.
  std::size_t settle(std::size_t max_events = SIZE_MAX) {
    return sim_->run(max_events);
  }

 private:
  std::string l2_dir(std::size_t i) const;
  /// Open the DurableBackend for L2 server i (aborts on I/O failure: a
  /// cluster that cannot recover its own storage must not serve).
  std::unique_ptr<storage::Backend> open_l2_backend(std::size_t i);
  /// Durable-mode construction step: pick, per surviving object, the newest
  /// tag with >= k decodable coded elements across all backends' recovered
  /// versions, force every L2 server to exactly that (tag, element), seed
  /// every L1 with it as the committed tag, and record a synthetic completed
  /// write in history() so the checkers treat the recovered state as the
  /// legitimate past it is.
  void recover_from_storage();

  Options opt_;
  std::unique_ptr<net::SimEngine> owned_engine_;
  net::Engine* engine_ = nullptr;
  net::Simulator* sim_ = nullptr;
  std::unique_ptr<net::Network> net_;
  std::shared_ptr<LdsContext> ctx_;
  History history_;
  StorageMeter meter_;
  std::vector<std::unique_ptr<ServerL1>> l1_;
  std::vector<std::unique_ptr<ServerL2>> l2_;
  std::vector<std::unique_ptr<Writer>> writers_;
  std::vector<std::unique_ptr<Reader>> readers_;
  std::vector<std::unique_ptr<Reader>> regular_readers_;
  std::vector<std::pair<ObjectId, Tag>> recovered_objects_;
};

/// Node-id layout used by LdsCluster (stable, documented for tests):
/// writers get 1..W, readers 10000+i, L1 servers 20000+j, L2 30000+i.
inline constexpr NodeId kReaderIdBase = 10000;
inline constexpr NodeId kL1IdBase = 20000;
inline constexpr NodeId kL2IdBase = 30000;

}  // namespace lds::core
