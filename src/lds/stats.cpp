#include "lds/stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace lds::core {

namespace {
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

LatencyStats latency_stats(const History& history, OpKind kind) {
  std::vector<double> lat;
  for (const auto& op : history.ops()) {
    if (!op.complete || op.kind != kind) continue;
    lat.push_back(op.responded - op.invoked);
  }
  LatencyStats s;
  s.count = lat.size();
  if (lat.empty()) return s;
  std::sort(lat.begin(), lat.end());
  double sum = 0;
  for (double v : lat) sum += v;
  s.mean = sum / static_cast<double>(lat.size());
  s.p50 = percentile(lat, 0.50);
  s.p90 = percentile(lat, 0.90);
  s.p99 = percentile(lat, 0.99);
  s.min = lat.front();
  s.max = lat.back();
  return s;
}

std::string format_latency_report(const History& history) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-8s %7s %8s %8s %8s %8s %8s %8s\n", "kind",
                "count", "mean", "p50", "p90", "p99", "min", "max");
  out += buf;
  const struct {
    OpKind kind;
    const char* name;
  } kinds[] = {{OpKind::Write, "write"}, {OpKind::Read, "read"}};
  for (const auto& [kind, name] : kinds) {
    const LatencyStats s = latency_stats(history, kind);
    std::snprintf(buf, sizeof buf,
                  "%-8s %7zu %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", name,
                  s.count, s.mean, s.p50, s.p90, s.p99, s.min, s.max);
    out += buf;
  }
  return out;
}

}  // namespace lds::core
