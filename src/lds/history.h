// Operation history recording and the atomicity checker.
//
// The paper proves atomicity (Theorem IV.9) through the sufficient condition
// of [Lynch 96, Lemma 13.16], instantiated with the partial order
// "pi < phi iff tag(pi) < tag(phi), or tags equal and pi is the write".
// For a *recorded finite execution* the three properties P1-P3 reduce to
// checkable facts about (invocation time, response time, tag, value):
//
//   W-uniq : distinct write operations have distinct tags.
//   P1/P2  : if op1's response precedes op2's invocation then
//              tag(op2) >  tag(op1) when op2 is a write,
//              tag(op2) >= tag(op1) when op2 is a read;
//            and a read that precedes a write never has the write's tag.
//   P3     : a read's value equals the unique write's value with the same
//            tag, or v0 if its tag is t0.
//
// check() verifies these in O(n log n) and reports the first violation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/types.h"
#include "net/sim.h"

namespace lds::core {

enum class OpKind : std::uint8_t { Write, Read };

struct OpRecord {
  OpId id = kNoOp;
  OpKind kind = OpKind::Write;
  ObjectId obj = 0;
  NodeId client = kNoNode;
  net::SimTime invoked = 0;
  net::SimTime responded = 0;
  bool complete = false;
  Tag tag;      ///< tag(pi): write tag, or tag whose value the read returned
  Value value;  ///< value written / value returned (shared handle, not a copy)
};

class History {
 public:
  /// Record an invocation; returns the index used by on_response.
  std::size_t on_invoke(OpId id, OpKind kind, ObjectId obj, NodeId client,
                        net::SimTime t);
  void on_response(std::size_t index, net::SimTime t, Tag tag, Value value);

  /// Record a write's chosen (tag, value) at put-data time, before it is
  /// known whether the write will complete.  Needed for P3: a read may
  /// legitimately return the value of a write that never completed (e.g. the
  /// writer crashed after the value reached the servers).
  void set_payload(std::size_t index, Tag tag, Value value);

  const std::vector<OpRecord>& ops() const { return ops_; }

  std::size_t completed() const;
  std::size_t incomplete() const;

  /// All completed operations for one object.
  std::vector<OpRecord> completed_ops(ObjectId obj) const;

  struct CheckResult {
    bool ok = true;
    std::string violation;  ///< empty when ok
  };

  /// Verify atomicity per object over completed operations.  `v0` is the
  /// initial value expected from reads that return t0.
  CheckResult check_atomicity(const Bytes& v0) const;

  /// Verify *regularity* (the Section-VI consistency extension): every read
  /// returns a genuinely-written value whose tag is at least the tag of any
  /// write that completed before the read was invoked.  Unlike atomicity,
  /// reads need not be mutually monotone.
  CheckResult check_regularity(const Bytes& v0) const;

  /// True iff every invoked operation completed (liveness of the recorded
  /// clients; call after running the simulation to quiescence).
  bool all_complete() const { return incomplete() == 0; }

 private:
  std::vector<OpRecord> ops_;
};

}  // namespace lds::core
