// The LDS wire protocol: every message of Figs. 1-3 of the paper.
//
// One payload class carries a variant body.  Every message names the object
// it concerns and the client/internal operation it belongs to (OpId), which
// drives both cost attribution (Section II-d) and the keying of per-read
// server state (the set K of Fig. 2; see DESIGN.md on why K is keyed by read
// op rather than by reader alone).
//
// Size accounting: Bytes payloads (values, coded elements, helper data)
// count as data; tags, ids and counters count as meta-data and are excluded
// from normalized costs, exactly as the paper prescribes.
#pragma once

#include <variant>

#include "common/slice.h"
#include "common/types.h"
#include "net/network.h"

namespace lds::core {

// ---- client <-> L1 ---------------------------------------------------------

/// get-tag (Fig. 1, writer): QUERY-TAG.
struct QueryTag {};

/// Response to QUERY-TAG: the max tag in the server's list L.
struct TagResp {
  Tag tag;
};

/// put-data (Fig. 1, writer): PUT-DATA (tw, v).  The value is a shared
/// handle: the writer's n1-way fan-out and every server's list entry
/// reference ONE buffer (cost accounting still charges each message the
/// full |v| — the refcount is a simulator artifact, not a protocol one).
struct PutData {
  Tag tag;
  Value value;
};

/// ACK to the writer of `tag` (sent from put-data-resp or broadcast-resp).
struct WriteAck {
  Tag tag;
};

/// get-committed-tag (Fig. 1, reader): QUERY-COMM-TAG.
struct QueryCommTag {};

/// Response: the server's committed tag tc.
struct CommTagResp {
  Tag tag;
};

/// get-data (Fig. 1, reader): QUERY-DATA with the requested tag treq.
struct QueryData {
  Tag treq;
};

/// A (tag, value) response to a reader (from the list L); shares the
/// server-side buffer.
struct DataRespValue {
  Tag tag;
  Value value;
};

/// A (tag, coded-element) response to a reader, produced by an internal
/// regenerate-from-L2.  `code_index` identifies which coordinate of the code
/// C this element is (the sending L1 server's index), needed to decode via C1.
struct DataRespCoded {
  Tag tag;
  int code_index = -1;
  Bytes element;
};

/// The (bot, bot) response: regeneration failed at this server.
struct DataRespNack {};

/// put-tag (Fig. 1, reader): PUT-TAG (tr).
struct PutTag {
  Tag tag;
};

/// ACK to the reader's PUT-TAG.
struct PutTagAck {};

/// Regular-consistency extension: a reader that skips the put-tag phase
/// still removes its Gamma registration so servers stop serving it.
/// Pure meta-data; no ACK is awaited.
struct UnregisterReader {};

// ---- L1 <-> L1 (broadcast primitive) ---------------------------------------

/// COMMIT-TAG broadcast (Fig. 2 line 6), delivered through the primitive of
/// [17]: the invoker sends to a fixed relay set of f1+1 servers; each relay
/// forwards to all of L1 on first receipt before consuming.  `bcast_id` is
/// globally unique so that each server consumes each broadcast exactly once.
struct CommitTag {
  Tag tag;
  std::uint64_t bcast_id = 0;
};

// ---- L1 <-> L2 (internal operations) ----------------------------------------

/// write-to-L2 (Fig. 2 line 20): WRITE-CODE-ELEM (t, c_{n1+i}).
struct WriteCodeElem {
  Tag tag;
  Bytes element;
};

/// ACK-CODE-ELEM (Fig. 3 line 6).
struct AckCodeElem {
  Tag tag;
};

/// regenerate-from-L2 (Fig. 2 line 39): QUERY-CODE-ELEM.  `target_index` is
/// the code coordinate (the querying L1 server's index j) being repaired;
/// the helper needs only this index - the MBR property of Section II-c.
struct QueryCodeElem {
  int target_index = -1;
};

/// SEND-HELPER-ELEM (Fig. 3 line 8): (r, t, h) - the reader identity rides in
/// the OpId.
struct SendHelperElem {
  Tag tag;
  Bytes helper;
};

/// The alternative ORDER is frozen: the wire codec (net/codec.h) uses the
/// variant index as the frame's type id.  Append new message types at the
/// end; never reorder.
using LdsBody =
    std::variant<QueryTag, TagResp, PutData, WriteAck, QueryCommTag,
                 CommTagResp, QueryData, DataRespValue, DataRespCoded,
                 DataRespNack, PutTag, PutTagAck, UnregisterReader, CommitTag,
                 WriteCodeElem, AckCodeElem, QueryCodeElem, SendHelperElem>;

class LdsMessage final : public net::Payload {
 public:
  LdsMessage(ObjectId obj, OpId op, LdsBody body)
      : obj_(obj), op_(op), body_(std::move(body)) {}

  ObjectId obj() const { return obj_; }
  OpId op() const override { return op_; }
  const LdsBody& body() const { return body_; }

  std::uint64_t data_bytes() const override;
  /// Exact on-wire meta-data bytes: the codec's encoded frame size minus the
  /// data payload (net/codec.h) — measured, not estimated.  Defined in
  /// messages.cpp to keep this header free of the codec dependency.
  std::uint64_t meta_bytes() const override;
  const char* type_name() const override;

  static net::MessagePtr make(ObjectId obj, OpId op, LdsBody body) {
    return std::make_shared<LdsMessage>(obj, op, std::move(body));
  }

 private:
  ObjectId obj_;
  OpId op_;
  LdsBody body_;
};

inline std::uint64_t LdsMessage::data_bytes() const {
  return std::visit(
      [](const auto& b) -> std::uint64_t {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, PutData>) return b.value.size();
        if constexpr (std::is_same_v<T, DataRespValue>) return b.value.size();
        if constexpr (std::is_same_v<T, DataRespCoded>)
          return b.element.size();
        if constexpr (std::is_same_v<T, WriteCodeElem>)
          return b.element.size();
        if constexpr (std::is_same_v<T, SendHelperElem>)
          return b.helper.size();
        return 0;
      },
      body_);
}

inline const char* LdsMessage::type_name() const {
  return std::visit(
      [](const auto& b) -> const char* {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, QueryTag>) return "QUERY-TAG";
        else if constexpr (std::is_same_v<T, TagResp>) return "TAG-RESP";
        else if constexpr (std::is_same_v<T, PutData>) return "PUT-DATA";
        else if constexpr (std::is_same_v<T, WriteAck>) return "WRITE-ACK";
        else if constexpr (std::is_same_v<T, QueryCommTag>)
          return "QUERY-COMM-TAG";
        else if constexpr (std::is_same_v<T, CommTagResp>)
          return "COMM-TAG-RESP";
        else if constexpr (std::is_same_v<T, QueryData>) return "QUERY-DATA";
        else if constexpr (std::is_same_v<T, DataRespValue>)
          return "DATA-RESP-VALUE";
        else if constexpr (std::is_same_v<T, DataRespCoded>)
          return "DATA-RESP-CODED";
        else if constexpr (std::is_same_v<T, DataRespNack>)
          return "DATA-RESP-NACK";
        else if constexpr (std::is_same_v<T, PutTag>) return "PUT-TAG";
        else if constexpr (std::is_same_v<T, PutTagAck>) return "PUT-TAG-ACK";
        else if constexpr (std::is_same_v<T, UnregisterReader>)
          return "UNREGISTER-READER";
        else if constexpr (std::is_same_v<T, CommitTag>) return "COMMIT-TAG";
        else if constexpr (std::is_same_v<T, WriteCodeElem>)
          return "WRITE-CODE-ELEM";
        else if constexpr (std::is_same_v<T, AckCodeElem>)
          return "ACK-CODE-ELEM";
        else if constexpr (std::is_same_v<T, QueryCodeElem>)
          return "QUERY-CODE-ELEM";
        else return "SEND-HELPER-ELEM";
      },
      body_);
}

}  // namespace lds::core
