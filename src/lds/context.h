// Shared immutable wiring of one LDS deployment: configuration, the striped
// regenerating code, and the node-id layout of both layers.
//
// Code-coordinate convention (paper, Section II-c): the code C has
// n = n1 + n2 coordinates; coordinate j in [0, n1) belongs to L1 server j
// (C1 = those rows), coordinate n1 + i belongs to L2 server i (C2).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "codes/striped.h"
#include "common/types.h"
#include "lds/config.h"
#include "lds/history.h"
#include "lds/storage_meter.h"

namespace lds::net {
class Engine;
}

namespace lds::core {

struct LdsContext {
  LdsConfig cfg;
  codes::StripedCode code;
  std::vector<NodeId> l1_ids;  ///< index j -> node id of L1 server j
  std::vector<NodeId> l2_ids;  ///< index i -> node id of L2 server i

  /// Optional instrumentation (may be null).
  StorageMeter* meter = nullptr;

  /// Optional engine for fanning large encodes out across lanes (may be
  /// null = serial).  Set by LdsCluster from its own engine; harmless under
  /// SimEngine (single lane => the striped code stays serial).
  net::Engine* encode_engine = nullptr;

  /// Durable-acknowledgement mode, set by LdsCluster when a data_dir is
  /// configured.  L1 servers then defer writer ACKs and put-tag ACKs until
  /// the tag's offload reached an l2_quorum of (durable) AckCodeElems, so
  /// a client-visible completion certifies the data survives SIGKILL.
  /// False (the default) keeps the paper's ack timing bit-for-bit.
  bool durable_acks = false;

  LdsContext(LdsConfig c, codes::StripedCode striped)
      : cfg(std::move(c)), code(std::move(striped)) {
    cfg.validate();
  }

  /// Convenience factory: build the backend from cfg.backend.
  static std::shared_ptr<LdsContext> make(LdsConfig cfg) {
    auto code =
        codes::make_backend(cfg.backend, cfg.n(), cfg.k(), cfg.d());
    return std::make_shared<LdsContext>(std::move(cfg), std::move(code));
  }

  /// The fixed relay set S_{f1+1} of the broadcast primitive: the first
  /// f1 + 1 servers of L1 (any fixed set works; see [17]).
  std::size_t relay_set_size() const { return cfg.f1 + 1; }

  /// Number of helper responses an L1 server waits for before attempting
  /// regeneration: n2 - f2 = f2 + d (Fig. 2 line 45).
  std::size_t regen_wait() const { return cfg.l2_quorum(); }

  /// Coded element of the initial value v0 at one code coordinate
  /// (memoized: every L2 server starts from the same encoding of v0).
  const Bytes& initial_element(int code_index) const;

  /// All n coded elements of `value` under (obj, t), memoized.  Encoding is
  /// a pure function of the value, and tags are unique per write, so every
  /// L1 server offloading the same committed write computes identical
  /// elements; the cache removes the redundant O(n1) re-encodings from
  /// simulation wall-clock time without changing any accounted cost.
  const std::vector<Bytes>& encoded_elements(ObjectId obj, Tag t,
                                             const Bytes& value) const;

 private:
  struct CacheKey {
    ObjectId obj;
    Tag tag;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return TagHash()(k.tag) ^ (static_cast<std::size_t>(k.obj) * 0x9e3779b9u);
    }
  };
  mutable std::vector<Bytes> initial_elements_;  // lazily filled, size n
  mutable std::unordered_map<CacheKey, std::vector<Bytes>, CacheKeyHash>
      encode_cache_;
};

}  // namespace lds::core
