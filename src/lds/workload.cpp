#include "lds/workload.h"

#include <algorithm>
#include <memory>

#include "common/rng.h"

namespace lds::core {

namespace {

struct WorkloadState {
  WorkloadOptions opt;
  Rng rng;
  double t_end = 0;
  std::size_t writes = 0;
  std::size_t reads = 0;

  explicit WorkloadState(const WorkloadOptions& o)
      : opt(o), rng(o.seed) {}

  ObjectId pick_object() {
    return static_cast<ObjectId>(
        rng.uniform_int(0, static_cast<std::int64_t>(opt.num_objects) - 1));
  }
  double think(double mean) {
    return mean <= 0 ? 0.0 : rng.exponential(mean);
  }
};

void writer_loop(LdsCluster& cluster, std::shared_ptr<WorkloadState> st,
                 std::size_t w);
void reader_loop(LdsCluster& cluster, std::shared_ptr<WorkloadState> st,
                 std::size_t r);

void writer_loop(LdsCluster& cluster, std::shared_ptr<WorkloadState> st,
                 std::size_t w) {
  if (cluster.sim().now() >= st->t_end) return;
  cluster.writer(w).write(
      st->pick_object(), st->rng.bytes(st->opt.value_size),
      [&cluster, st, w](Tag) {
        ++st->writes;
        const double gap = st->think(st->opt.write_think_mean);
        cluster.sim().after(gap > 0 ? gap : 1e-9,
                            [&cluster, st, w] { writer_loop(cluster, st, w); });
      });
}

void reader_loop(LdsCluster& cluster, std::shared_ptr<WorkloadState> st,
                 std::size_t r) {
  if (cluster.sim().now() >= st->t_end) return;
  cluster.reader(r).read(
      st->pick_object(), [&cluster, st, r](Tag, Bytes) {
        ++st->reads;
        const double gap = st->think(st->opt.read_think_mean);
        cluster.sim().after(gap > 0 ? gap : 1e-9,
                            [&cluster, st, r] { reader_loop(cluster, st, r); });
      });
}

}  // namespace

WorkloadStats run_workload(LdsCluster& cluster, const WorkloadOptions& opt) {
  auto st = std::make_shared<WorkloadState>(opt);
  const double t0 = cluster.sim().now();
  st->t_end = t0 + opt.duration;

  const std::size_t writers = std::min(opt.writers, cluster.num_writers());
  const std::size_t readers = std::min(opt.readers, cluster.num_readers());
  for (std::size_t w = 0; w < writers; ++w) writer_loop(cluster, st, w);
  for (std::size_t r = 0; r < readers; ++r) reader_loop(cluster, st, r);

  cluster.settle();

  WorkloadStats stats;
  stats.writes_completed = st->writes;
  stats.reads_completed = st->reads;
  stats.span = cluster.sim().now() - t0;
  stats.writes_per_tau1 =
      stats.span > 0
          ? static_cast<double>(st->writes) / stats.span *
                cluster.options().tau1
          : 0.0;
  return stats;
}

}  // namespace lds::core
