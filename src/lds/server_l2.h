// The L2 (back-end) server automaton: Fig. 3 of the paper, plus the repair
// extension the paper lists as future work ("extend the framework to carry
// out repair of erasure-coded servers in L2", Section VI).
//
// Per object, an L2 server stores exactly one (tag, coded-element) pair,
// initially (t0, c0) where c0 is its coded element of the initial value v0.
// Fig. 3 actions:
//   write-to-L2-resp:      keep the incoming element iff its tag is newer,
//                          and ACK either way;
//   regenerate-from-L2-resp: compute helper data for the requesting
//                          coordinate from the locally stored element (needs
//                          only that coordinate's index) and send it back
//                          with the local tag.
//
// Repair extension: a replacement server regenerates its own coordinate by
// sending QUERY-CODE-ELEM (the exact message of Fig. 2/3 - the helper does
// not care whether an L1 server or an L2 peer is asking) to its n2 - 1 L2
// peers, waiting for f2 + d - 1 responses, and running the MBR repair on the
// highest tag with >= d helpers on a common tag.  A concurrent write-to-L2
// can make a round fail (no d-common-tag subset); the repair retries until
// it succeeds, mirroring how the paper's L1 regeneration falls back on
// later commits.  Quorum intersection makes a quiescent round succeed:
// among any f2 + d - 1 peer responses, at least d carry the last completed
// write's tag (n2 = 2 f2 + d).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lds/context.h"
#include "lds/heartbeat.h"
#include "lds/messages.h"
#include "net/network.h"
#include "storage/backend.h"

namespace lds::core {

class ServerL2 final : public net::Node {
 public:
  /// `index` is this server's position in L2; its code coordinate is
  /// n1 + index.  `backend` is the optional durability seam: when set, the
  /// server adopts the backend's recovered state, persists every element
  /// BEFORE acknowledging it, and stops acknowledging once the backend is
  /// poisoned.  Null (the default) keeps the original RAM-only behavior.
  ServerL2(net::Network& net, std::shared_ptr<const LdsContext> ctx,
           std::size_t index,
           std::unique_ptr<storage::Backend> backend = nullptr);
  ~ServerL2() override;

  std::size_t index() const { return index_; }
  int code_index() const { return static_cast<int>(ctx_->cfg.n1 + index_); }

  void on_message(NodeId from, const net::MessagePtr& msg) override;

  /// Repair extension: regenerate this server's (tag, element) pair for one
  /// object from its L2 peers.  `done(tag)` fires with the repaired tag when
  /// a round succeeds; failed rounds (concurrent write-to-L2 in flight)
  /// retry automatically up to `max_rounds`, after which `done(nullopt)`
  /// reports failure - in a correct deployment that indicates more than f2
  /// back-end failures.
  using RepairCallback = std::function<void(std::optional<Tag>)>;
  void repair_object(ObjectId obj, RepairCallback done = {},
                     int max_rounds = 16);

  /// Drop all local state for one object (models a disk-replacement /
  /// restart-from-empty scenario before repair_object is called).
  void forget_object(ObjectId obj);

  // ---- durability ----------------------------------------------------------

  /// Cluster recovery sync: adopt (tag, element) directly (no messages),
  /// persisting it if a backend is attached.  Construction-time only.
  void recovery_store(ObjectId obj, Tag tag, Bytes element);

  /// Objects with explicit local state (recovered or written; excludes
  /// untouched objects whose (t0, c0) default is derivable).
  std::vector<ObjectId> stored_objects() const;

  /// The durability seam, null for RAM-only servers (tests, bench).
  storage::Backend* storage_backend() { return backend_.get(); }

  // ---- introspection -------------------------------------------------------
  Tag stored_tag(ObjectId obj) const;
  const Bytes& stored_element(ObjectId obj) const;
  std::uint64_t stored_bytes() const { return stored_bytes_; }

 private:
  struct ObjectState {
    Tag tag = kTag0;
    Bytes element;
  };

  struct Repair {
    RepairCallback done;
    int rounds_left = 0;
    std::size_t responses = 0;
    struct Helper {
      Tag tag;
      int l2_index;
      Bytes payload;
    };
    std::vector<Helper> helpers;
  };

  ObjectState& object(ObjectId obj);
  const ObjectState& object(ObjectId obj) const;
  /// Persist (durable mode) then apply in RAM.  False = the backend
  /// refused (poisoned / injected fault); the caller must not acknowledge.
  bool store(ObjectId obj, Tag tag, Bytes element);
  /// Durable mode: tell every L1 server this element is durable here.
  void broadcast_durable_ack(ObjectId obj, Tag tag);

  void start_repair_round(ObjectId obj);
  void finish_repair_round(ObjectId obj, OpId op);

  std::shared_ptr<const LdsContext> ctx_;
  std::size_t index_;
  std::unique_ptr<storage::Backend> backend_;
  // Lazily materialized per-object state; mutable so that const
  // introspection can materialize the initial (t0, c0).
  mutable std::unordered_map<ObjectId, ObjectState> objects_;
  mutable std::uint64_t stored_bytes_ = 0;
  std::unordered_map<OpId, ObjectId> repair_ops_;  // op -> object
  std::unordered_map<ObjectId, Repair> repairs_;
  std::uint32_t repair_seq_ = 0;
};

}  // namespace lds::core
