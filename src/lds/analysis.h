// Closed-form performance formulas from Section V of the paper.
//
// Every bench binary prints these next to the measured quantity so that the
// paper-vs-measured comparison is explicit.  All costs are normalized by the
// value size |v| = 1, exactly as in the paper.
#pragma once

#include <cstddef>

namespace lds::core::analysis {

/// beta / |v| for the MBR code: file size B = k(2d-k+1)/2 symbols, beta = 1.
double mbr_beta_frac(std::size_t k, std::size_t d);

/// alpha / |v| for the MBR code: alpha = d beta.
double mbr_alpha_frac(std::size_t k, std::size_t d);

/// Lemma V.2: write cost  n1 + n1 n2 2d / (k (2d - k + 1))  = Theta(n1).
double write_cost(std::size_t n1, std::size_t n2, std::size_t k,
                  std::size_t d);

/// Lemma V.2: read cost  n1 (1 + n2/d) 2d/(k(2d-k+1)) + n1 I(delta > 0).
double read_cost(std::size_t n1, std::size_t n2, std::size_t k, std::size_t d,
                 bool delta_positive);

/// Lemma V.3: single-object permanent storage  2 d n2 / (k (2d - k + 1)).
double l2_storage_per_object(std::size_t n2, std::size_t k, std::size_t d);

/// Remark 2: MSR-point (or RS) storage cost n2 / k per object.
double msr_storage_per_object(std::size_t n2, std::size_t k);

/// Remark 1 ablation: read cost with an RS back-end - each of the n1 servers
/// pulls k elements of size 1/k, then ships its regenerated element (1/k) to
/// the reader:  n1 (1 + 1/k) + n1 I(delta > 0)  = Omega(n1) even at delta=0.
double rs_read_cost(std::size_t n1, std::size_t k, bool delta_positive);

/// Lemma V.4: write completes within 4 tau1 + 2 tau0.
double write_latency_bound(double tau1, double tau0);

/// Lemma V.4: the extended write completes within
/// max(3 tau1 + 2 tau0 + 2 tau2, 4 tau1 + 2 tau0).
double extended_write_latency_bound(double tau1, double tau0, double tau2);

/// Lemma V.4: read completes within max(6 tau1 + 2 tau2,
/// 6 tau1 + 2 tau0 + tau2).  (The appendix derivation gives this form; the
/// main-text statement has a typo'd 5 tau1 term - see EXPERIMENTS.md.)
double read_latency_bound(double tau1, double tau0, double tau2);

/// Lemma V.5: worst-case L1 (temporary) storage bound ceil(5 + 2 mu) theta n1
/// for the symmetric system (n1 = n2, f1 = f2, tau0 = tau1, mu = tau2/tau1).
double l1_storage_bound(double theta, std::size_t n1, double mu);

/// Lemma V.5: total L2 (permanent) storage 2 N n2 / (k + 1) for the
/// symmetric system (where d = k).
double l2_storage_multi(std::size_t num_objects, std::size_t n2,
                        std::size_t k);

}  // namespace lds::core::analysis
