#include "lds/history.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/assert.h"
#include "common/format.h"

namespace lds::core {

std::size_t History::on_invoke(OpId id, OpKind kind, ObjectId obj,
                               NodeId client, net::SimTime t) {
  OpRecord rec;
  rec.id = id;
  rec.kind = kind;
  rec.obj = obj;
  rec.client = client;
  rec.invoked = t;
  ops_.push_back(std::move(rec));
  return ops_.size() - 1;
}

void History::on_response(std::size_t index, net::SimTime t, Tag tag,
                          Value value) {
  LDS_REQUIRE(index < ops_.size(), "History::on_response: bad index");
  OpRecord& rec = ops_[index];
  LDS_CHECK(!rec.complete, "History::on_response: duplicate response");
  rec.responded = t;
  rec.complete = true;
  rec.tag = tag;
  rec.value = std::move(value);
}

void History::set_payload(std::size_t index, Tag tag, Value value) {
  LDS_REQUIRE(index < ops_.size(), "History::set_payload: bad index");
  ops_[index].tag = tag;
  ops_[index].value = std::move(value);
}

std::size_t History::completed() const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [](const OpRecord& r) { return r.complete; }));
}

std::size_t History::incomplete() const { return ops_.size() - completed(); }

std::vector<OpRecord> History::completed_ops(ObjectId obj) const {
  std::vector<OpRecord> out;
  for (const auto& r : ops_) {
    if (r.complete && r.obj == obj) out.push_back(r);
  }
  return out;
}

namespace {

History::CheckResult fail(const std::string& msg) {
  return {false, msg};
}

History::CheckResult check_object(ObjectId obj,
                                  const std::vector<OpRecord>& all,
                                  const Bytes& v0) {
  // Gather this object's ops; writes contribute their (tag, value) even when
  // incomplete (set_payload), completed ops additionally constrain ordering.
  std::map<Tag, const OpRecord*> write_of_tag;
  std::vector<const OpRecord*> done;
  for (const auto& r : all) {
    if (r.obj != obj) continue;
    if (r.kind == OpKind::Write && (r.complete || r.tag != Tag{})) {
      auto [it, inserted] = write_of_tag.emplace(r.tag, &r);
      if (!inserted) {
        return fail("two writes share tag " + r.tag.to_string());
      }
    }
    if (r.complete) done.push_back(&r);
  }

  // P3: every read returns the value of the write with its tag (or v0 at t0).
  for (const OpRecord* r : done) {
    if (r->kind != OpKind::Read) continue;
    if (r->tag == kTag0) {
      if (r->value != v0) {
        return fail("read returned tag t0 but not the initial value v0");
      }
      continue;
    }
    auto it = write_of_tag.find(r->tag);
    if (it == write_of_tag.end()) {
      return fail("read returned tag " + r->tag.to_string() +
                  " written by no known write");
    }
    if (it->second->value != r->value) {
      return fail("read of tag " + r->tag.to_string() +
                  " returned a different value than was written");
    }
  }

  // P1/P2 real-time order: sweep invocations in time order; maintain the max
  // tag among operations that responded strictly earlier.
  std::vector<const OpRecord*> by_invoke = done;
  std::sort(by_invoke.begin(), by_invoke.end(),
            [](const OpRecord* a, const OpRecord* b) {
              return a->invoked < b->invoked;
            });
  std::vector<const OpRecord*> by_response = done;
  std::sort(by_response.begin(), by_response.end(),
            [](const OpRecord* a, const OpRecord* b) {
              return a->responded < b->responded;
            });

  std::size_t ri = 0;
  Tag max_done_tag = kTag0;
  bool any_done = false;
  for (const OpRecord* op : by_invoke) {
    while (ri < by_response.size() &&
           by_response[ri]->responded < op->invoked) {
      if (!any_done || by_response[ri]->tag > max_done_tag) {
        max_done_tag = by_response[ri]->tag;
      }
      any_done = true;
      ++ri;
    }
    if (!any_done) continue;
    if (op->kind == OpKind::Write) {
      if (!(op->tag > max_done_tag)) {
        return fail("write tag " + op->tag.to_string() +
                    " not above preceding completed op tag " +
                    max_done_tag.to_string());
      }
    } else {
      if (op->tag < max_done_tag) {
        return fail("read tag " + op->tag.to_string() +
                    " below preceding completed op tag " +
                    max_done_tag.to_string());
      }
    }
  }
  return {};
}

}  // namespace

namespace {

History::CheckResult check_object_regular(ObjectId obj,
                                          const std::vector<OpRecord>& all,
                                          const Bytes& v0) {
  std::map<Tag, const OpRecord*> write_of_tag;
  std::vector<const OpRecord*> reads;
  std::vector<const OpRecord*> writes_done;
  for (const auto& r : all) {
    if (r.obj != obj) continue;
    if (r.kind == OpKind::Write && (r.complete || r.tag != Tag{})) {
      auto [it, inserted] = write_of_tag.emplace(r.tag, &r);
      if (!inserted) return fail("two writes share tag " + r.tag.to_string());
      if (r.complete) writes_done.push_back(&r);
    } else if (r.kind == OpKind::Read && r.complete) {
      reads.push_back(&r);
    }
  }

  for (const OpRecord* r : reads) {
    // Value legitimacy: written by some write (possibly concurrent or
    // incomplete) or the initial value.
    if (r->tag == kTag0) {
      if (r->value != v0) return fail("read of t0 returned non-v0 value");
    } else {
      auto it = write_of_tag.find(r->tag);
      if (it == write_of_tag.end()) {
        return fail("read returned tag " + r->tag.to_string() +
                    " written by no known write");
      }
      if (it->second->value != r->value) {
        return fail("read of tag " + r->tag.to_string() +
                    " returned a different value than was written");
      }
    }
    // Freshness: at least the newest write completed before invocation.
    for (const OpRecord* w : writes_done) {
      if (w->responded < r->invoked && r->tag < w->tag) {
        return fail("read returned tag " + r->tag.to_string() +
                    " older than preceding completed write " +
                    w->tag.to_string());
      }
    }
  }
  return {};
}

}  // namespace

History::CheckResult History::check_regularity(const Bytes& v0) const {
  std::set<ObjectId> objects;
  for (const auto& r : ops_) objects.insert(r.obj);
  for (ObjectId obj : objects) {
    auto res = check_object_regular(obj, ops_, v0);
    if (!res.ok) {
      res.violation = "object " + std::to_string(obj) + ": " + res.violation;
      return res;
    }
  }
  return {};
}

History::CheckResult History::check_atomicity(const Bytes& v0) const {
  std::set<ObjectId> objects;
  for (const auto& r : ops_) objects.insert(r.obj);
  for (ObjectId obj : objects) {
    auto res = check_object(obj, ops_, v0);
    if (!res.ok) {
      res.violation =
          "object " + std::to_string(obj) + ": " + res.violation;
      return res;
    }
  }
  return {};
}

}  // namespace lds::core
