// Heartbeat payloads shared by the repair manager (sender) and the L2
// servers (responders).  A deliberately separate micro-protocol: the LDS
// automata of Figs. 1-3 stay exactly the paper's, and heartbeats are pure
// meta-data in the cost accounting.
#pragma once

#include "net/codec.h"
#include "net/network.h"

namespace lds::core {

class HeartbeatPing final : public net::Payload {
 public:
  explicit HeartbeatPing(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq() const { return seq_; }
  std::uint64_t data_bytes() const override { return 0; }
  std::uint64_t meta_bytes() const override {
    return net::codec::encoded_size(*this);  // pure meta: header + u64 seq
  }
  const char* type_name() const override { return "HEARTBEAT-PING"; }

 private:
  std::uint64_t seq_;
};

class HeartbeatPong final : public net::Payload {
 public:
  explicit HeartbeatPong(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq() const { return seq_; }
  std::uint64_t data_bytes() const override { return 0; }
  std::uint64_t meta_bytes() const override {
    return net::codec::encoded_size(*this);
  }
  const char* type_name() const override { return "HEARTBEAT-PONG"; }

 private:
  std::uint64_t seq_;
};

}  // namespace lds::core
