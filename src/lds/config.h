// Deployment parameters of one LDS instance.
//
// Paper, Section II: layers L1 and L2 with n1 and n2 servers tolerate
// f1 < n1/2 and f2 < n2/3 crash failures; the regenerating code parameters
// are tied to the layout by  n1 = 2 f1 + k  and  n2 = 2 f2 + d.
#pragma once

#include <cstddef>

#include "codes/factory.h"
#include "common/types.h"

namespace lds::core {

struct LdsConfig {
  std::size_t n1 = 0;  ///< servers in the edge layer L1
  std::size_t f1 = 0;  ///< crash tolerance in L1 (f1 < n1/2)
  std::size_t n2 = 0;  ///< servers in the back-end layer L2
  std::size_t f2 = 0;  ///< crash tolerance in L2 (f2 < n2/3)

  /// Back-end code.  PmMbr is the paper's algorithm; Rs and Replication are
  /// the Remark 1 / Remark 2 ablations.
  codes::BackendKind backend = codes::BackendKind::PmMbr;

  /// The distinguished initial value v0 (paper: v0 in V).  L2 servers start
  /// with (t0, c0) where c0 is their coded element of v0.
  Bytes initial_value{};

  /// Proxy-cache extension (paper, Section I: "our architecture also
  /// permits the edge layer to be configured as a proxy cache layer for
  /// objects that are frequently read").  When set, an L1 server keeps the
  /// value of its committed tag in the list after the internal write-to-L2
  /// completes (instead of garbage-collecting it), so quiescent reads are
  /// served from the edge in 6 tau1 without touching L2.  The trade-off:
  /// per-object L1 storage becomes 1 x |v| per server instead of ~0, and a
  /// cache-served read moves n1 x |v| over the cheap client<->L1 links
  /// instead of Theta(1) x |v| over the expensive L1<->L2 links.
  bool proxy_cache = false;

  std::size_t k() const { return n1 - 2 * f1; }
  std::size_t d() const { return n2 - 2 * f2; }
  std::size_t n() const { return n1 + n2; }

  /// Quorum sizes used by the protocol.
  std::size_t l1_quorum() const { return f1 + k(); }          // = n1 - f1
  std::size_t l2_quorum() const { return n2 - f2; }           // = f2 + d

  /// Aborts (LDS_REQUIRE) if the parameters violate the paper's constraints
  /// or the GF(256) field bound.
  void validate() const;

  /// A balanced configuration: n1 = n2 = n, f1 = f2 = f (requires k = d >= 1,
  /// i.e. f < n/3 on both layers as the paper's Section V-1 symmetry case).
  static LdsConfig symmetric(std::size_t n, std::size_t f,
                             Bytes initial_value = {});
};

}  // namespace lds::core
