#include "lds/config.h"

#include "common/assert.h"

namespace lds::core {

void LdsConfig::validate() const {
  LDS_REQUIRE(n1 >= 1 && n2 >= 1, "LdsConfig: need servers in both layers");
  LDS_REQUIRE(2 * f1 < n1, "LdsConfig: need f1 < n1/2");
  LDS_REQUIRE(3 * f2 < n2, "LdsConfig: need f2 < n2/3");
  LDS_REQUIRE(k() >= 1, "LdsConfig: k = n1 - 2 f1 must be >= 1");
  LDS_REQUIRE(d() >= k(), "LdsConfig: need d >= k (MBR code requires it)");
  LDS_REQUIRE(n() <= 255, "LdsConfig: GF(256) bound n1 + n2 <= 255");
}

LdsConfig LdsConfig::symmetric(std::size_t n, std::size_t f,
                               Bytes initial_value) {
  LdsConfig cfg;
  cfg.n1 = n;
  cfg.n2 = n;
  cfg.f1 = f;
  cfg.f2 = f;
  cfg.initial_value = std::move(initial_value);
  cfg.validate();
  return cfg;
}

}  // namespace lds::core
