#include "lds/context.h"

namespace lds::core {

const Bytes& LdsContext::initial_element(int code_index) const {
  if (initial_elements_.empty()) {
    initial_elements_ = code.encode_value(cfg.initial_value, encode_engine);
  }
  return initial_elements_.at(static_cast<std::size_t>(code_index));
}

const std::vector<Bytes>& LdsContext::encoded_elements(
    ObjectId obj, Tag t, const Bytes& value) const {
  const CacheKey key{obj, t};
  auto it = encode_cache_.find(key);
  if (it != encode_cache_.end()) return it->second;
  if (encode_cache_.size() > 256) encode_cache_.clear();  // bound memory
  return encode_cache_.emplace(key, code.encode_value(value, encode_engine))
      .first->second;
}

}  // namespace lds::core
