// Storage-cost gauges (paper, Section II-d: storage cost is the worst-case
// total data stored; L1 holdings are "temporary", L2 holdings "permanent";
// meta-data such as tags is ignored).
//
// Servers report every addition/removal of value bytes (L1 lists) and coded
// element bytes (L2 stores); the meter keeps running totals and the peak,
// which is what Lemmas V.3 and V.5 bound.
#pragma once

#include <cstdint>

#include "common/assert.h"

namespace lds::core {

class StorageMeter {
 public:
  void add_l1(std::uint64_t bytes) {
    l1_ += bytes;
    if (l1_ > l1_peak_) l1_peak_ = l1_;
  }
  void sub_l1(std::uint64_t bytes) {
    LDS_CHECK(l1_ >= bytes, "StorageMeter: L1 underflow");
    l1_ -= bytes;
  }
  void add_l2(std::uint64_t bytes) {
    l2_ += bytes;
    if (l2_ > l2_peak_) l2_peak_ = l2_;
  }
  void sub_l2(std::uint64_t bytes) {
    LDS_CHECK(l2_ >= bytes, "StorageMeter: L2 underflow");
    l2_ -= bytes;
  }

  std::uint64_t l1_bytes() const { return l1_; }
  std::uint64_t l2_bytes() const { return l2_; }
  std::uint64_t l1_peak_bytes() const { return l1_peak_; }
  std::uint64_t l2_peak_bytes() const { return l2_peak_; }

  void reset_peaks() {
    l1_peak_ = l1_;
    l2_peak_ = l2_;
  }

 private:
  std::uint64_t l1_ = 0;
  std::uint64_t l2_ = 0;
  std::uint64_t l1_peak_ = 0;
  std::uint64_t l2_peak_ = 0;
};

}  // namespace lds::core
