// The reader automaton: Fig. 1 (right) of the paper.
//
//   get-committed-tag: QUERY-COMM-TAG to all of L1; await f1 + k committed
//                      tags; treq = their max.
//   get-data         : QUERY-DATA (treq) to all of L1; await responses from
//                      f1 + k *distinct* servers such that at least one is a
//                      (tag, value) pair, or at least k are (tag,
//                      coded-element) pairs on a common tag (>= treq); in the
//                      latter case decode through C1.  Servers may respond
//                      more than once (a nack first, a value later when a
//                      commit serves the registered reader) - candidates
//                      accumulate until both conditions hold.  Return the
//                      candidate with the highest tag.
//   put-tag          : PUT-TAG (tr) to all of L1; await f1 + k ACKs; return.
#pragma once

#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "lds/context.h"
#include "lds/messages.h"
#include "net/network.h"

namespace lds::core {

/// Consistency level of read operations.  Atomic is the paper's LDS; Regular
/// is the Section-VI extension: the put-tag phase is skipped, trading the
/// monotone-reads guarantee for one fewer round trip (2 tau1) and no
/// write-back traffic.  The erasure-code machinery is untouched - that is
/// the modularity claim of the paper.
enum class ReadConsistency : std::uint8_t { Atomic, Regular };

class Reader final : public net::Node {
 public:
  /// The returned value is a shared handle; lambdas taking `const Bytes&`
  /// (or `Bytes`, at the cost of one copy) keep working via Value's
  /// implicit view conversion.
  using Callback = std::function<void(Tag, Value)>;

  Reader(net::Network& net, std::shared_ptr<const LdsContext> ctx, NodeId id,
         History* history = nullptr,
         ReadConsistency consistency = ReadConsistency::Atomic);

  /// Invoke a read (asynchronous; `cb` fires at the response step with the
  /// returned tag and value).  Requires no operation in progress.
  void read(ObjectId obj, Callback cb = {});

  /// Tag-only validation round: run ONLY the get-committed-tag phase and
  /// return (treq, empty Value).  Because treq is the max committed tag over
  /// an f1 + k quorum, it is >= the tag of any read/write that completed
  /// before this call started — exactly the currency check a client-side
  /// cache needs.  No reader registration happens during QUERY-COMM-TAG, so
  /// no cleanup round is required, and the operation is not a history read
  /// (it returns no value; the caller decides what to serve).
  void read_tag(ObjectId obj, Callback cb = {});

  bool busy() const { return phase_ != Phase::Idle; }
  std::uint32_t ops_started() const { return seq_; }

  void on_message(NodeId from, const net::MessagePtr& msg) override;

 private:
  enum class Phase { Idle, GetCommittedTag, GetData, PutTag };

  void send_to_l1(const LdsBody& body);
  void start(ObjectId obj, Callback cb, bool tag_only);
  /// Check the get-data completion condition; if met, enter put-tag.
  void maybe_finish_get_data();

  void finish();

  std::shared_ptr<const LdsContext> ctx_;
  History* history_;
  ReadConsistency consistency_;

  Phase phase_ = Phase::Idle;
  bool tag_only_ = false;
  std::uint32_t seq_ = 0;
  OpId op_ = kNoOp;
  ObjectId obj_ = 0;
  Callback cb_;
  std::size_t history_index_ = 0;

  Tag treq_;
  std::unordered_set<NodeId> responders_;
  // Value candidates: best (max-tag) (tag, value) seen so far.
  bool have_value_ = false;
  Tag best_value_tag_;
  Value best_value_;
  // Coded candidates per tag: (code coordinate, element) lists.
  std::map<Tag, std::vector<codes::IndexedBytes>> coded_;

  Tag result_tag_;
  Value result_value_;
};

}  // namespace lds::core
